package core

import (
	"sort"
	"testing"

	"repro/internal/linkcut"
	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

func edgeIDs(es []wgraph.Edge) []wgraph.EdgeID {
	out := make([]wgraph.EdgeID, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(t *testing.T, name string, got, want []wgraph.Edge) {
	t.Helper()
	g, w := edgeIDs(got), edgeIDs(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %v want %v", name, g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: %v want %v", name, g, w)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	m := New(4, 1)
	a, r, j := m.BatchInsert(nil)
	if a != nil || r != nil || j != nil {
		t.Fatal("non-nil results for empty batch")
	}
	if m.Size() != 0 || m.Weight() != 0 || m.NumComponents() != 4 {
		t.Fatal("state changed")
	}
}

func TestSingleEdgeBatch(t *testing.T) {
	m := New(3, 1)
	e := wgraph.Edge{ID: 1, U: 0, V: 1, W: 10}
	added, removed, rejected := m.BatchInsert([]wgraph.Edge{e})
	if len(added) != 1 || added[0].ID != 1 || len(removed) != 0 || len(rejected) != 0 {
		t.Fatalf("added=%v removed=%v rejected=%v", added, removed, rejected)
	}
	if !m.Connected(0, 1) || m.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	if m.Weight() != 10 || m.Size() != 1 || m.NumComponents() != 2 {
		t.Fatalf("weight=%d size=%d comps=%d", m.Weight(), m.Size(), m.NumComponents())
	}
}

func TestSelfLoopRejected(t *testing.T) {
	m := New(2, 1)
	_, _, rejected := m.BatchInsert([]wgraph.Edge{{ID: 1, U: 0, V: 0, W: -5}})
	if len(rejected) != 1 || m.Size() != 0 {
		t.Fatalf("rejected=%v size=%d", rejected, m.Size())
	}
}

func TestRedRuleEviction(t *testing.T) {
	m := New(3, 1)
	m.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 10},
		{ID: 2, U: 1, V: 2, W: 20},
	})
	added, removed, rejected := m.BatchInsert([]wgraph.Edge{{ID: 3, U: 0, V: 2, W: 5}})
	if len(added) != 1 || added[0].ID != 3 {
		t.Fatalf("added=%v", added)
	}
	if len(removed) != 1 || removed[0].ID != 2 {
		t.Fatalf("removed=%v", removed)
	}
	if len(rejected) != 0 {
		t.Fatalf("rejected=%v", rejected)
	}
	if m.Weight() != 15 {
		t.Fatalf("weight=%d", m.Weight())
	}
	// A heavier parallel edge must be rejected without evictions.
	added, removed, rejected = m.BatchInsert([]wgraph.Edge{{ID: 4, U: 0, V: 2, W: 99}})
	if len(added) != 0 || len(removed) != 0 || len(rejected) != 1 {
		t.Fatalf("added=%v removed=%v rejected=%v", added, removed, rejected)
	}
}

func TestBatchWithInternalCycle(t *testing.T) {
	// A whole cycle arrives in one batch: exactly its heaviest edge is
	// rejected.
	m := New(4, 3)
	_, removed, rejected := m.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 1},
		{ID: 2, U: 1, V: 2, W: 2},
		{ID: 3, U: 2, V: 3, W: 3},
		{ID: 4, U: 3, V: 0, W: 4},
	})
	if len(removed) != 0 {
		t.Fatalf("removed=%v", removed)
	}
	if len(rejected) != 1 || rejected[0].ID != 4 {
		t.Fatalf("rejected=%v", rejected)
	}
	if m.Size() != 3 || m.Weight() != 6 {
		t.Fatalf("size=%d weight=%d", m.Size(), m.Weight())
	}
}

// TestMatchesOfflineKruskal drives random batches and compares the
// maintained forest to the offline MSF of everything inserted so far. With
// the (W, ID) total order the MSF is unique, so the comparison is exact.
func TestMatchesOfflineKruskal(t *testing.T) {
	for _, cfg := range []struct {
		n, batches, maxBatch int
		wrange               int64
		seed                 uint64
	}{
		{n: 30, batches: 40, maxBatch: 8, wrange: 1_000_000, seed: 1},
		{n: 100, batches: 30, maxBatch: 40, wrange: 10, seed: 2}, // heavy ties
		{n: 200, batches: 15, maxBatch: 300, wrange: 1 << 40, seed: 3},
		{n: 8, batches: 60, maxBatch: 4, wrange: 5, seed: 4},
	} {
		r := parallel.NewRNG(cfg.seed)
		m := New(cfg.n, cfg.seed*17+5)
		var all []wgraph.Edge
		id := wgraph.EdgeID(1)
		for b := 0; b < cfg.batches; b++ {
			ell := 1 + r.Intn(cfg.maxBatch)
			batch := make([]wgraph.Edge, ell)
			for i := range batch {
				batch[i] = wgraph.Edge{
					ID: id, U: int32(r.Intn(cfg.n)), V: int32(r.Intn(cfg.n)),
					W: r.Int63() % cfg.wrange,
				}
				id++
			}
			all = append(all, batch...)
			added, removed, rejected := m.BatchInsert(batch)
			if len(added)+len(rejected) != len(batch) {
				t.Fatalf("cfg=%+v batch %d: added+rejected=%d want %d", cfg, b, len(added)+len(rejected), len(batch))
			}
			want := msf.Kruskal(cfg.n, all)
			got := m.ForestEdges()
			sameIDs(t, "forest", got, want)
			if m.Weight() != wgraph.TotalWeight(want) {
				t.Fatalf("cfg=%+v batch %d: weight %d want %d", cfg, b, m.Weight(), wgraph.TotalWeight(want))
			}
			for _, e := range removed {
				if m.HasEdge(e.ID) {
					t.Fatalf("removed edge %v still present", e)
				}
			}
		}
	}
}

func TestMatchesLinkCutSingleInserts(t *testing.T) {
	const n = 60
	r := parallel.NewRNG(7)
	m := New(n, 9)
	lc := linkcut.NewIncrementalMSF(n)
	for i := 0; i < 500; i++ {
		e := wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Int63() % 100}
		added, removed, _ := m.BatchInsert([]wgraph.Edge{e})
		lcAdded, lcEv, lcHas := lc.Insert(e)
		if (len(added) == 1) != lcAdded {
			t.Fatalf("step %d: added mismatch", i)
		}
		if (len(removed) == 1) != lcHas {
			t.Fatalf("step %d: eviction mismatch", i)
		}
		if lcHas && removed[0].ID != lcEv.ID {
			t.Fatalf("step %d: evicted %v want %v", i, removed[0], lcEv)
		}
		if m.Weight() != lc.Weight() {
			t.Fatalf("step %d: weight %d want %d", i, m.Weight(), lc.Weight())
		}
	}
}

func TestPathMaxEdge(t *testing.T) {
	m := New(4, 5)
	m.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 10},
		{ID: 2, U: 1, V: 2, W: 30},
		{ID: 3, U: 2, V: 3, W: 20},
	})
	e, ok := m.PathMaxEdge(0, 3)
	if !ok || e.ID != 2 {
		t.Fatalf("got %v,%v", e, ok)
	}
	if _, ok := m.PathMaxEdge(0, 0); ok {
		t.Fatal("trivial path")
	}
	m2 := New(4, 5)
	if _, ok := m2.PathMaxEdge(0, 3); ok {
		t.Fatal("disconnected path")
	}
}

func TestBatchDelete(t *testing.T) {
	const n = 30
	r := parallel.NewRNG(21)
	m := New(n, 13)
	lc := linkcut.New(n)
	live := map[wgraph.EdgeID]wgraph.Edge{}
	id := wgraph.EdgeID(1)
	for round := 0; round < 25; round++ {
		// Insert a batch.
		var batch []wgraph.Edge
		for i := 0; i < 1+r.Intn(10); i++ {
			batch = append(batch, wgraph.Edge{ID: id, U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Int63() % 1000})
			id++
		}
		added, removed, _ := m.BatchInsert(batch)
		for _, e := range removed {
			lc.Cut(e.ID)
			delete(live, e.ID)
		}
		for _, e := range added {
			lc.Link(e)
			live[e.ID] = e
		}
		// Delete a couple of forest edges outright.
		var del []wgraph.EdgeID
		for eid := range live {
			if len(del) >= r.Intn(3) {
				break
			}
			del = append(del, eid)
		}
		for _, eid := range del {
			lc.Cut(eid)
			delete(live, eid)
		}
		m.BatchDelete(del)
		// Compare connectivity and path maxima.
		for q := 0; q < 30; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := m.Connected(u, v), lc.Connected(u, v); got != want {
				t.Fatalf("round %d: Connected(%d,%d)=%v want %v", round, u, v, got, want)
			}
			ge, gok := m.PathMaxEdge(u, v)
			we, wok := lc.PathMax(u, v)
			if gok != wok || (gok && ge.ID != we.ID) {
				t.Fatalf("round %d: PathMax(%d,%d)=(%v,%v) want (%v,%v)", round, u, v, ge, gok, we, wok)
			}
		}
		if m.Size() != len(live) {
			t.Fatalf("round %d: size=%d want %d", round, m.Size(), len(live))
		}
	}
}

func TestDeleteUnknownPanics(t *testing.T) {
	m := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.BatchDelete([]wgraph.EdgeID{4})
}

func TestComponentsMergeAcrossBatches(t *testing.T) {
	m := New(6, 3)
	m.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 1},
		{ID: 2, U: 2, V: 3, W: 1},
		{ID: 3, U: 4, V: 5, W: 1},
	})
	if m.NumComponents() != 3 {
		t.Fatalf("components=%d", m.NumComponents())
	}
	m.BatchInsert([]wgraph.Edge{
		{ID: 4, U: 1, V: 2, W: 1},
		{ID: 5, U: 3, V: 4, W: 1},
	})
	if m.NumComponents() != 1 {
		t.Fatalf("components=%d", m.NumComponents())
	}
	if !m.Connected(0, 5) {
		t.Fatal("ends not connected")
	}
}

func TestHighDegreeHub(t *testing.T) {
	// All edges incident to one hub; exercises the ternary adapter under the
	// MSF layer with churn on a single gadget.
	const n = 40
	m := New(n, 17)
	var batch []wgraph.Edge
	for i := 1; i < n; i++ {
		batch = append(batch, wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i), W: int64(1000 - i)})
	}
	m.BatchInsert(batch)
	if m.Size() != n-1 {
		t.Fatalf("size=%d", m.Size())
	}
	// Now a cheaper ring connecting the leaves evicts most hub edges.
	var ring []wgraph.Edge
	for i := 1; i < n-1; i++ {
		ring = append(ring, wgraph.Edge{ID: wgraph.EdgeID(1000 + i), U: int32(i), V: int32(i + 1), W: 1})
	}
	_, removed, _ := m.BatchInsert(ring)
	if len(removed) != len(ring) {
		t.Fatalf("removed %d hub edges, want %d", len(removed), len(ring))
	}
	all := append(batch, ring...)
	sameIDs(t, "hub forest", m.ForestEdges(), msf.Kruskal(n, all))
}

func TestDuplicateEdgesInOneBatch(t *testing.T) {
	m := New(2, 1)
	added, _, rejected := m.BatchInsert([]wgraph.Edge{
		{ID: 1, U: 0, V: 1, W: 7},
		{ID: 2, U: 0, V: 1, W: 7}, // tie: ID 1 wins
		{ID: 3, U: 1, V: 0, W: 9},
	})
	if len(added) != 1 || added[0].ID != 1 {
		t.Fatalf("added=%v", added)
	}
	if len(rejected) != 2 {
		t.Fatalf("rejected=%v", rejected)
	}
}
