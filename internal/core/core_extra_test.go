package core

import (
	"testing"
	"testing/quick"

	"repro/internal/linkcut"
	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// TestCompressedPathsPublicAPI checks the real-vertex compressed path tree
// against naive pairwise path maxima on random forests with arbitrary
// degrees (the gadget contraction must be invisible).
func TestCompressedPathsPublicAPI(t *testing.T) {
	r := parallel.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(60)
		m := New(n, uint64(trial)+3)
		lc := linkcut.New(n)
		uf := unionfind.New(n)
		id := wgraph.EdgeID(1)
		// Arbitrary-degree random forest (no degree cap!).
		for tries := 0; tries < 6*n; tries++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || !uf.Union(u, v) {
				continue
			}
			e := wgraph.Edge{ID: id, U: u, V: v, W: r.Int63() % 1000}
			id++
			m.BatchInsert([]wgraph.Edge{e})
			lc.Link(e)
		}
		nm := 2 + r.Intn(6)
		markSet := map[int32]bool{}
		for len(markSet) < nm {
			markSet[int32(r.Intn(n))] = true
		}
		var marked []int32
		for v := range markSet {
			marked = append(marked, v)
		}
		res := m.CompressedPaths(marked)
		// Build CPT adjacency for naive queries.
		adj := map[int32][]struct {
			to int32
			k  wgraph.Key
		}{}
		for _, e := range res {
			adj[e.U] = append(adj[e.U], struct {
				to int32
				k  wgraph.Key
			}{e.V, e.Key})
			adj[e.V] = append(adj[e.V], struct {
				to int32
				k  wgraph.Key
			}{e.U, e.Key})
		}
		var walk func(at, target int32, best wgraph.Key, seen map[int32]bool) (wgraph.Key, bool)
		walk = func(at, target int32, best wgraph.Key, seen map[int32]bool) (wgraph.Key, bool) {
			if at == target {
				return best, true
			}
			seen[at] = true
			for _, h := range adj[at] {
				if seen[h.to] {
					continue
				}
				b := best
				if b.Less(h.k) {
					b = h.k
				}
				if r, ok := walk(h.to, target, b, seen); ok {
					return r, true
				}
			}
			return wgraph.Key{}, false
		}
		for _, u := range marked {
			for _, v := range marked {
				if u >= v {
					continue
				}
				wantE, wantOK := lc.PathMax(u, v)
				got, gotOK := walk(u, v, wgraph.MinKey, map[int32]bool{})
				if gotOK != wantOK {
					t.Fatalf("trial %d: cpt path(%d,%d) ok=%v want %v", trial, u, v, gotOK, wantOK)
				}
				if gotOK && got != wgraph.KeyOf(wantE) {
					t.Fatalf("trial %d: cpt path(%d,%d)=%v want %v", trial, u, v, got, wgraph.KeyOf(wantE))
				}
			}
		}
		// No virtual leftovers and no same-owner self loops.
		for _, e := range res {
			if e.U == e.V {
				t.Fatalf("trial %d: self loop %+v", trial, e)
			}
			if e.Key.ID < 0 {
				t.Fatalf("trial %d: virtual key escaped: %+v", trial, e)
			}
		}
	}
}

func TestCompressedPathsHub(t *testing.T) {
	// Star with hub 0: CPT of three leaves must be three edges at the hub.
	const n = 30
	m := New(n, 7)
	var batch []wgraph.Edge
	for i := 1; i < n; i++ {
		batch = append(batch, wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i), W: int64(i)})
	}
	m.BatchInsert(batch)
	res := m.CompressedPaths([]int32{3, 7, 20})
	if len(res) != 3 {
		t.Fatalf("cpt=%+v", res)
	}
	for _, e := range res {
		if e.U != 0 && e.V != 0 {
			t.Fatalf("edge %+v does not touch the hub Steiner vertex", e)
		}
	}
}

func TestQuickBatchesMatchOffline(t *testing.T) {
	f := func(ops []uint32) bool {
		const n = 24
		m := New(n, 99)
		var all []wgraph.Edge
		id := wgraph.EdgeID(1)
		i := 0
		for i+2 < len(ops) {
			ell := int(ops[i]%5) + 1
			i++
			var batch []wgraph.Edge
			for j := 0; j < ell && i+1 < len(ops); j++ {
				batch = append(batch, wgraph.Edge{
					ID: id,
					U:  int32(ops[i] % n),
					V:  int32(ops[i+1] % n),
					W:  int64(ops[i] % 64),
				})
				id++
				i += 2
			}
			all = append(all, batch...)
			m.BatchInsert(batch)
		}
		want := msf.Kruskal(n, all)
		if len(want) != m.Size() || wgraph.TotalWeight(want) != m.Weight() {
			return false
		}
		for _, e := range want {
			if !m.HasEdge(e.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeByID(t *testing.T) {
	m := New(3, 1)
	e := wgraph.Edge{ID: 9, U: 0, V: 1, W: 4}
	m.BatchInsert([]wgraph.Edge{e})
	got, ok := m.EdgeByID(9)
	if !ok || got != e {
		t.Fatalf("EdgeByID=%v,%v", got, ok)
	}
	if _, ok := m.EdgeByID(10); ok {
		t.Fatal("phantom edge")
	}
}

func TestWeightOutOfRangePanics(t *testing.T) {
	m := New(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.BatchInsert([]wgraph.Edge{{ID: 1, U: 0, V: 1, W: -1 << 63}})
}

func TestInterleavedInsertDeleteFuzz(t *testing.T) {
	// Long fuzz of mixed BatchInsert/BatchDelete against a link-cut mirror.
	const n = 40
	r := parallel.NewRNG(1001)
	m := New(n, 31)
	lc := linkcut.New(n)
	live := map[wgraph.EdgeID]bool{}
	id := wgraph.EdgeID(1)
	for round := 0; round < 150; round++ {
		if r.Intn(3) > 0 {
			var batch []wgraph.Edge
			for j := 0; j < 1+r.Intn(6); j++ {
				batch = append(batch, wgraph.Edge{ID: id, U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Int63() % 200})
				id++
			}
			added, removed, _ := m.BatchInsert(batch)
			for _, e := range removed {
				lc.Cut(e.ID)
				delete(live, e.ID)
			}
			for _, e := range added {
				lc.Link(e)
				live[e.ID] = true
			}
		} else {
			var del []wgraph.EdgeID
			for eid := range live {
				if len(del) >= 2 {
					break
				}
				del = append(del, eid)
			}
			m.BatchDelete(del)
			for _, eid := range del {
				lc.Cut(eid)
				delete(live, eid)
			}
		}
		for q := 0; q < 20; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if m.Connected(u, v) != lc.Connected(u, v) {
				t.Fatalf("round %d: connectivity mismatch (%d,%d)", round, u, v)
			}
		}
		if m.Size() != len(live) {
			t.Fatalf("round %d: size %d want %d", round, m.Size(), len(live))
		}
	}
}
