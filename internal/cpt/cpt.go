// Package cpt constructs compressed path trees (Section 3 of the paper,
// Algorithm 1). Given a rake-compress tree of a weighted forest and a set of
// marked vertices, the compressed path tree is the minimal tree over the
// marked vertices (plus Steiner vertices) that preserves every pairwise
// heaviest-edge query: each compressed edge carries the maximum (W, ID) key
// of the path segment it represents.
//
// The construction marks the RC-tree clusters containing marked vertices
// bottom-up, then expands top-down: an unmarked cluster contributes only its
// boundary summary (for a binary cluster, one edge weighted with the
// cluster's path maximum), while a marked cluster recurses into its children
// and prunes its representative (SpliceOut/Prune of Algorithm 1). Work is
// O(l·lg(1+n/l)) expected for l marked vertices (Theorem 3.2).
package cpt

import (
	"repro/internal/rctree"
	"repro/internal/wgraph"
)

// Edge is a compressed path tree edge: the path between U and V in the
// original forest has heaviest edge Key (Key.ID identifies that original
// edge).
type Edge struct {
	U, V int32
	Key  wgraph.Key
}

// Result is the union of the compressed path trees of every component
// containing a marked vertex.
type Result struct {
	Vertices []int32
	Edges    []Edge
}

type bEdge struct {
	u, v int32
	key  wgraph.Key
	dead bool
}

type builder struct {
	m     *rctree.Marking
	t     *rctree.Tree
	verts map[int32]struct{}
	adj   map[int32][]int32
	edges []bEdge
}

func (b *builder) addVertex(v int32) { b.verts[v] = struct{}{} }

func (b *builder) addEdge(u, v int32, k wgraph.Key) {
	id := int32(len(b.edges))
	b.edges = append(b.edges, bEdge{u: u, v: v, key: k})
	b.adj[u] = append(b.adj[u], id)
	b.adj[v] = append(b.adj[v], id)
}

// liveEdges compacts v's adjacency in place and returns the live edge ids.
func (b *builder) liveEdges(v int32) []int32 {
	ids := b.adj[v]
	out := ids[:0]
	for _, id := range ids {
		if !b.edges[id].dead {
			out = append(out, id)
		}
	}
	b.adj[v] = out
	return out
}

func (b *builder) other(id, v int32) int32 {
	e := &b.edges[id]
	if e.u == v {
		return e.v
	}
	return e.u
}

// spliceOut removes unmarked degree-2 vertex v, merging its two incident
// edges into one carrying the heavier key.
func (b *builder) spliceOut(v int32) {
	ids := b.liveEdges(v)
	if len(ids) != 2 || b.m.VertexMarked(v) {
		return
	}
	e0, e1 := &b.edges[ids[0]], &b.edges[ids[1]]
	a, c := b.other(ids[0], v), b.other(ids[1], v)
	k := wgraph.MaxKeyOf(e0.key, e1.key)
	e0.dead = true
	e1.dead = true
	delete(b.adj, v)
	b.addEdge(a, c, k)
}

// prune implements the Prune primitive of Algorithm 1 on the representative
// of a just-expanded cluster.
func (b *builder) prune(v int32) {
	if b.m.VertexMarked(v) {
		return
	}
	ids := b.liveEdges(v)
	switch len(ids) {
	case 2:
		b.spliceOut(v)
	case 1:
		// Remove v and its edge, then splice the neighbour if it became an
		// unmarked degree-2 vertex.
		u := b.other(ids[0], v)
		b.edges[ids[0]].dead = true
		delete(b.adj, v)
		b.spliceOut(u)
	case 0:
		delete(b.adj, v)
	}
}

// expand processes the composite cluster C(v) per Algorithm 1.
func (b *builder) expand(v int32) {
	if !b.m.ClusterMarked(v) {
		// Algorithm 1 line 7/9: an unmarked cluster contributes only its
		// boundary summary. A unary cluster's lone boundary vertex is the
		// parent's representative, which materializes through the parent's
		// own edge clusters whenever it survives pruning, so only the binary
		// case adds anything here.
		if b.t.DecisionOf(v) == rctree.Compress {
			bd := b.t.Boundary(v)
			b.addEdge(bd[0], bd[1], b.t.CompressKey(v))
		}
		return
	}
	if b.m.VertexMarked(v) {
		b.addVertex(v)
	}
	for _, x := range b.t.RakedIn(v) {
		b.expand(x)
	}
	// At most two death edges; copy locally because expand recurses.
	var local [2]rctree.EdgeChild
	dch := b.t.DeathEdges(v, local[:0])
	for _, ec := range dch {
		if ec.IsCompress {
			b.expand(ec.Owner)
		} else {
			b.addEdge(ec.U, ec.V, ec.Key)
		}
	}
	b.prune(v)
}

// Build computes the compressed path trees of all components of t containing
// a vertex in marked.
func Build(t *rctree.Tree, marked []int32) Result {
	m := t.NewMarking(marked)
	b := &builder{
		m:     m,
		t:     t,
		verts: make(map[int32]struct{}, len(marked)*2),
		adj:   make(map[int32][]int32, len(marked)*2),
	}
	for _, root := range m.Roots() {
		b.expand(root)
	}
	var res Result
	seen := map[int32]struct{}{}
	for _, e := range b.edges {
		if e.dead {
			continue
		}
		res.Edges = append(res.Edges, Edge{U: e.u, V: e.v, Key: e.key})
		seen[e.u] = struct{}{}
		seen[e.v] = struct{}{}
	}
	for v := range b.verts {
		seen[v] = struct{}{}
	}
	res.Vertices = make([]int32, 0, len(seen))
	for v := range seen {
		res.Vertices = append(res.Vertices, v)
	}
	return res
}
