package cpt

import (
	"testing"

	"repro/internal/linkcut"
	"repro/internal/parallel"
	"repro/internal/rctree"
	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

func key(id int) wgraph.Key { return wgraph.Key{W: int64(id * 10), ID: wgraph.EdgeID(id)} }

// cptPathMax answers heaviest-edge queries inside a Result by DFS.
func cptPathMax(res Result, u, v int32) (wgraph.Key, bool) {
	if u == v {
		return wgraph.Key{}, false
	}
	adj := map[int32][]Edge{}
	for _, e := range res.Edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, Key: e.Key})
	}
	type frame struct {
		at   int32
		best wgraph.Key
		has  bool
	}
	seen := map[int32]bool{u: true}
	stack := []frame{{at: u}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[f.at] {
			w := e.V
			if seen[w] {
				continue
			}
			seen[w] = true
			best, has := f.best, f.has
			if !has || best.Less(e.Key) {
				best, has = e.Key, true
			}
			if w == v {
				return best, has
			}
			stack = append(stack, frame{at: w, best: best, has: has})
		}
	}
	return wgraph.Key{}, false
}

func hasVertex(res Result, v int32) bool {
	for _, x := range res.Vertices {
		if x == v {
			return true
		}
	}
	return false
}

func TestEmptyMarkedSet(t *testing.T) {
	tr := rctree.New(4, 1)
	tr.BatchUpdate([]rctree.Edge{{U: 0, V: 1, Key: key(1)}}, nil)
	res := Build(tr, nil)
	if len(res.Vertices) != 0 || len(res.Edges) != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestSingleMarkedVertex(t *testing.T) {
	tr := rctree.New(5, 1)
	tr.BatchUpdate([]rctree.Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 1, V: 2, Key: key(2)},
		{U: 2, V: 3, Key: key(3)},
	}, nil)
	res := Build(tr, []int32{2})
	if len(res.Vertices) != 1 || res.Vertices[0] != 2 || len(res.Edges) != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestIsolatedMarkedVertex(t *testing.T) {
	tr := rctree.New(3, 1)
	res := Build(tr, []int32{1})
	if len(res.Vertices) != 1 || res.Vertices[0] != 1 || len(res.Edges) != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestTwoMarkedOnPath(t *testing.T) {
	// 0-1-2-3-4 with increasing weights; mark 0 and 4: the CPT must be the
	// single edge (0,4) carrying the heaviest key, edge 4.
	tr := rctree.New(5, 7)
	var ins []rctree.Edge
	for i := 0; i < 4; i++ {
		ins = append(ins, rctree.Edge{U: int32(i), V: int32(i + 1), Key: key(i + 1)})
	}
	tr.BatchUpdate(ins, nil)
	res := Build(tr, []int32{0, 4})
	if len(res.Edges) != 1 {
		t.Fatalf("edges: %+v", res.Edges)
	}
	e := res.Edges[0]
	if !(e.U == 0 && e.V == 4 || e.U == 4 && e.V == 0) {
		t.Fatalf("edge endpoints: %+v", e)
	}
	if e.Key != key(4) {
		t.Fatalf("edge key %v want %v", e.Key, key(4))
	}
	if len(res.Vertices) != 2 {
		t.Fatalf("vertices: %v", res.Vertices)
	}
}

func TestSteinerVertexAppears(t *testing.T) {
	// Star with center 0 and leaves 1,2,3 (all marked leaves): center is a
	// Steiner vertex of degree 3 and must be retained.
	tr := rctree.New(4, 5)
	tr.BatchUpdate([]rctree.Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 0, V: 2, Key: key(2)},
		{U: 0, V: 3, Key: key(3)},
	}, nil)
	res := Build(tr, []int32{1, 2, 3})
	if len(res.Edges) != 3 {
		t.Fatalf("edges: %+v", res.Edges)
	}
	if !hasVertex(res, 0) {
		t.Fatalf("Steiner center missing: %v", res.Vertices)
	}
	k, ok := cptPathMax(res, 1, 3)
	if !ok || k != key(3) {
		t.Fatalf("cpt pathmax(1,3)=%v,%v", k, ok)
	}
}

func TestMarkAllEqualsOriginalTree(t *testing.T) {
	// When every vertex is marked, the CPT is the original tree.
	r := parallel.NewRNG(3)
	const n = 40
	tr := rctree.New(n, 9)
	uf := unionfind.New(n)
	deg := make([]int, n)
	var ins []rctree.Edge
	id := 1
	for len(ins) < n-1 {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
			continue
		}
		deg[u]++
		deg[v]++
		ins = append(ins, rctree.Edge{U: u, V: v, Key: key(id)})
		id++
	}
	tr.BatchUpdate(ins, nil)
	var all []int32
	for i := int32(0); i < n; i++ {
		all = append(all, i)
	}
	res := Build(tr, all)
	if len(res.Edges) != len(ins) {
		t.Fatalf("edges %d want %d", len(res.Edges), len(ins))
	}
	want := map[[2]int32]wgraph.Key{}
	for _, e := range ins {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		want[[2]int32{a, b}] = e.Key
	}
	for _, e := range res.Edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		k, ok := want[[2]int32{a, b}]
		if !ok || k != e.Key {
			t.Fatalf("unexpected CPT edge %+v", e)
		}
	}
}

// TestQueryEquivalenceRandom is the core property: for random forests and
// random marked sets, heaviest-edge queries inside the CPT agree with the
// original forest for every pair of marked vertices, the CPT has O(l)
// vertices, no unmarked vertex has degree < 3, and the CPT is a forest.
func TestQueryEquivalenceRandom(t *testing.T) {
	r := parallel.NewRNG(77)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(150)
		tr := rctree.New(n, uint64(trial)*3+1)
		lc := linkcut.New(n)
		uf := unionfind.New(n)
		deg := make([]int, n)
		var ins []rctree.Edge
		id := 1
		target := r.Intn(n)
		for len(ins) < target {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || deg[u] >= 3 || deg[v] >= 3 || !uf.Union(u, v) {
				continue
			}
			deg[u]++
			deg[v]++
			k := key(id)
			ins = append(ins, rctree.Edge{U: u, V: v, Key: k})
			lc.Link(wgraph.Edge{ID: k.ID, U: u, V: v, W: k.W})
			id++
		}
		tr.BatchUpdate(ins, nil)
		// Random marked set.
		nm := 1 + r.Intn(8)
		markSet := map[int32]bool{}
		for len(markSet) < nm {
			markSet[int32(r.Intn(n))] = true
		}
		var marked []int32
		for v := range markSet {
			marked = append(marked, v)
		}
		res := Build(tr, marked)
		// All marked vertices present.
		for _, v := range marked {
			if !hasVertex(res, v) {
				t.Fatalf("trial %d: marked %d missing from CPT", trial, v)
			}
		}
		// Size bound: <= 2l vertices per component set (standard bound for
		// trees with l leaves and no degree-2 internal vertices; allow 2l).
		if len(res.Vertices) > 2*len(marked) {
			t.Fatalf("trial %d: CPT has %d vertices for %d marked", trial, len(res.Vertices), len(marked))
		}
		// Minimality: unmarked CPT vertices have degree >= 3.
		degc := map[int32]int{}
		for _, e := range res.Edges {
			degc[e.U]++
			degc[e.V]++
		}
		for v, d := range degc {
			if !markSet[v] && d < 3 {
				t.Fatalf("trial %d: Steiner vertex %d has degree %d", trial, v, d)
			}
		}
		// Acyclic.
		cuf := unionfind.New(n)
		for _, e := range res.Edges {
			if !cuf.Union(e.U, e.V) {
				t.Fatalf("trial %d: CPT has a cycle at %+v", trial, e)
			}
		}
		// Query equivalence for every marked pair.
		for _, u := range marked {
			for _, v := range marked {
				if u >= v {
					continue
				}
				wantE, wantOK := lc.PathMax(u, v)
				gotK, gotOK := cptPathMax(res, u, v)
				if gotOK != wantOK {
					t.Fatalf("trial %d: pathmax(%d,%d) ok=%v want %v", trial, u, v, gotOK, wantOK)
				}
				if gotOK && gotK != wgraph.KeyOf(wantE) {
					t.Fatalf("trial %d: pathmax(%d,%d)=%v want %v", trial, u, v, gotK, wgraph.KeyOf(wantE))
				}
			}
		}
	}
}

func TestMarkedAcrossComponents(t *testing.T) {
	tr := rctree.New(6, 2)
	tr.BatchUpdate([]rctree.Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 2, V: 3, Key: key(2)},
	}, nil)
	res := Build(tr, []int32{0, 1, 2, 3, 5})
	if len(res.Edges) != 2 {
		t.Fatalf("edges: %+v", res.Edges)
	}
	if !hasVertex(res, 5) {
		t.Fatal("isolated marked vertex missing")
	}
	if _, ok := cptPathMax(res, 0, 2); ok {
		t.Fatal("cross-component path in CPT")
	}
}

func TestCPTAfterDynamicUpdates(t *testing.T) {
	// The CPT must reflect the current forest after batched updates.
	tr := rctree.New(5, 4)
	hs := tr.BatchUpdate([]rctree.Edge{
		{U: 0, V: 1, Key: key(1)},
		{U: 1, V: 2, Key: key(5)},
		{U: 2, V: 3, Key: key(2)},
	}, nil)
	res := Build(tr, []int32{0, 3})
	k, ok := cptPathMax(res, 0, 3)
	if !ok || k != key(5) {
		t.Fatalf("pathmax=%v,%v", k, ok)
	}
	// Replace the heavy middle edge with a light one.
	tr.BatchUpdate([]rctree.Edge{{U: 1, V: 2, Key: key(3)}}, []rctree.Handle{hs[1]})
	res = Build(tr, []int32{0, 3})
	k, ok = cptPathMax(res, 0, 3)
	if !ok || k != key(3) {
		t.Fatalf("pathmax after update=%v,%v", k, ok)
	}
}
