package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The decoders are the recovery trust boundary: every byte they consume
// comes from disk state a crash (or an operator) may have mangled. The
// fuzz contract is identical for both: arbitrary input yields either a
// clean error or a valid decode — never a panic, and never a silent
// misread (checked by re-encoding a successful decode and requiring it to
// reproduce the input bytes exactly; both encodings are canonical, so any
// drift means the decoder accepted something the writer would not have
// produced).

func validRecordBytes(seq uint64, edges []Edge) []byte {
	return appendRecord(nil, seq, edges)
}

func fuzzEdges() []Edge {
	return []Edge{
		{U: 0, V: 1, W: 1, T: 1_700_000_000_000_000_000},
		{U: 46, V: 2, W: 1 << 40, T: -9},
		{U: -3, V: 1 << 30, W: -77, T: 0},
	}
}

func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(validRecordBytes(0, nil))
	f.Add(validRecordBytes(123456, fuzzEdges()))
	// Two valid records back to back: the decoder must consume exactly the
	// first and report its true length.
	f.Add(validRecordBytes(7, fuzzEdges()[:1]))
	f.Add(appendRecord(validRecordBytes(7, fuzzEdges()[:1]), 8, fuzzEdges()))
	trunc := validRecordBytes(9, fuzzEdges())
	f.Add(trunc[:len(trunc)-5])
	flip := validRecordBytes(10, fuzzEdges())
	flip[9] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderSize+payloadFixed || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.End() < rec.Seq {
			t.Fatalf("record [%d, %d) wraps", rec.Seq, rec.End())
		}
		reenc := appendRecord(nil, rec.Seq, rec.Edges)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("silent misread: re-encoding %d edges differs from the %d accepted bytes", len(rec.Edges), n)
		}
	})
}

func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSnapshotBytes(f, 0, nil))
	f.Add(validSnapshotBytes(f, 42, fuzzEdges()))
	trunc := validSnapshotBytes(f, 7, fuzzEdges())
	f.Add(trunc[:len(trunc)-3])
	flip := validSnapshotBytes(f, 8, fuzzEdges())
	flip[17] ^= 0x01
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if s.End() < s.Watermark {
			t.Fatalf("snapshot [%d, %d) wraps", s.Watermark, s.End())
		}
		reenc := encodeSnapshotForTest(t, s)
		if !bytes.Equal(reenc, data) {
			t.Fatalf("silent misread: re-encoding %d edges differs from the %d accepted bytes", len(s.Edges), len(data))
		}
	})
}

// validSnapshotBytes builds a canonical snapshot image via the real
// writer (temp dir round trip keeps the single write path honest).
func validSnapshotBytes(f *testing.F, watermark uint64, edges []Edge) []byte {
	f.Helper()
	data, err := snapshotBytes(f.TempDir(), watermark, edges)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func encodeSnapshotForTest(t *testing.T, s Snapshot) []byte {
	t.Helper()
	data, err := snapshotBytes(t.TempDir(), s.Watermark, s.Edges)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func snapshotBytes(dir string, watermark uint64, edges []Edge) ([]byte, error) {
	w, err := CreateSnapshot(dir, watermark, uint64(len(edges)))
	if err != nil {
		return nil, err
	}
	if err := w.Append(edges); err != nil {
		return nil, err
	}
	name, err := w.Commit()
	if err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(dir, name))
}
