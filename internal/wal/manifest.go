package wal

import (
	"encoding/json"
	"errors"
	"io/fs"
	"path/filepath"

	"repro/internal/fault"
)

// ManifestName is the manifest's filename inside the data directory.
const ManifestName = "MANIFEST.json"

// Manifest is the registry's durable index: which windows exist, how to
// rebuild each one, and how much of each log is already expired. It is
// the recovery source of truth — log directories without a manifest entry
// are orphans and are ignored (then wiped if the name is reused).
type Manifest struct {
	Version int `json:"version"`
	// Windows maps window name to its durable state. The config payload
	// is opaque to this package: the service layer marshals whatever it
	// needs to reconstruct the window.
	Windows map[string]WindowState `json:"windows"`
}

// WindowState is one window's manifest entry.
type WindowState struct {
	Config json.RawMessage `json:"config"`
	// Watermark is the expiry low-watermark: the number of arrivals
	// expired so far. Recovery replays only log records extending past
	// it, and Prune may delete segments entirely below it once the
	// manifest recording it is durable.
	Watermark uint64 `json:"watermark"`
	// Snapshot, when set, names the newest committed live-edge snapshot
	// file in the window's log directory, and SnapshotEnd is the arrival
	// index one past its last edge. The pointer is a hint: recovery scans
	// the directory for the newest *valid* snapshot (a crash between a
	// snapshot's rename and the manifest rewrite leaves a newer file than
	// the pointer, and it is always safe to use), and a missing or corrupt
	// snapshot falls back to full suffix replay. What IS load-bearing is
	// SnapshotEnd's role in GC: log segments entirely below
	// max(Watermark, SnapshotEnd) are prune-eligible, so these fields must
	// only ever record snapshots that are durably committed — pruning on
	// the strength of a snapshot that failed to commit would strand
	// recovery without its suffix.
	Snapshot    string `json:"snapshot,omitempty"`
	SnapshotEnd uint64 `json:"snapshot_end,omitempty"`
	// Degraded records that the window's WAL was in the degraded state
	// (appends suspended after a failure) when this manifest was written,
	// with GapEdges acknowledged arrivals that never reached the log. A
	// crash before the window heals makes those edges unrecoverable;
	// recovery surfaces the marker loudly instead of silently diverging.
	// The self-heal path clears both fields when it commits the gap-closing
	// snapshot.
	Degraded bool   `json:"degraded,omitempty"`
	GapEdges uint64 `json:"gap_edges,omitempty"`
}

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// LoadManifest reads the manifest in dir. A missing file is an empty
// manifest, not an error — a fresh data directory recovers zero windows.
func LoadManifest(dir string) (*Manifest, error) { return LoadManifestFS(fault.OS(), dir) }

// LoadManifestFS is LoadManifest through an injectable filesystem.
func LoadManifestFS(fsys fault.FS, dir string) (*Manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return &Manifest{Version: ManifestVersion, Windows: map[string]WindowState{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if m.Windows == nil {
		m.Windows = map[string]WindowState{}
	}
	return &m, nil
}

// SaveManifest atomically replaces the manifest in dir: the new content is
// written to a temp file, fsynced, and renamed over the old manifest, then
// the directory entry is fsynced. Readers observe either the old manifest
// or the new one, never a torn mixture.
func SaveManifest(dir string, m *Manifest) error { return SaveManifestFS(fault.OS(), dir, m) }

// SaveManifestFS is SaveManifest through an injectable filesystem.
func SaveManifestFS(fsys fault.FS, dir string, m *Manifest) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := fsys.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	syncDir(fsys, dir)
	return nil
}
