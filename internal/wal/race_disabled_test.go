//go:build !race

package wal

const raceEnabled = false
