package wal

import (
	"testing"
	"time"
)

// TestSyncNoopWhenClean pins the dirty-flag contract that makes the
// durable-ack escalation cheap under fsync=batch: Sync only fsyncs when
// bytes were written since the last successful fsync.
func TestSyncNoopWhenClean(t *testing.T) {
	fsyncs := 0
	l, err := Open(t.TempDir(), Options{
		Sync:         SyncNone,
		ObserveFsync: func(time.Duration) { fsyncs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A fresh log has nothing to flush.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 0 {
		t.Fatalf("Sync on a clean log fsynced %d times, want 0", fsyncs)
	}
	if _, err := l.Append([]Edge{{U: 1, V: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("Sync after an append fsynced %d times, want 1", fsyncs)
	}
	// Nothing new written: the second Sync must be a mutex hop, not an
	// fsync — this is what a durable ack pays under fsync=batch.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("Sync on a clean log fsynced again (%d total), want still 1", fsyncs)
	}
	// And the flag re-arms on the next append.
	if _, err := l.Append([]Edge{{U: 2, V: 3, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 2 {
		t.Fatalf("Sync after a second append fsynced %d times total, want 2", fsyncs)
	}
}

// TestSyncBatchMakesSyncFree: under SyncBatch every append already
// fsynced, so an explicit Sync right after an append is a no-op.
func TestSyncBatchMakesSyncFree(t *testing.T) {
	fsyncs := 0
	l, err := Open(t.TempDir(), Options{
		Sync:         SyncBatch,
		ObserveFsync: func(time.Duration) { fsyncs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Edge{{U: 1, V: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("append under SyncBatch fsynced %d times, want 1", fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("Sync after a batch-synced append fsynced again (%d total), want still 1", fsyncs)
	}
}
