package wal

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures the per-batch logging cost on the ingest hot
// path for each fsync policy (512-edge batches, the ingester default).
func BenchmarkAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  SyncPolicy
	}{{"off", SyncNone}, {"interval", SyncInterval}, {"batch", SyncBatch}} {
		b.Run(tc.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: tc.pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := mkBatch(0, 512)
			b.SetBytes(512 * edgeSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplay measures raw decode+deliver speed — the floor under
// crash-recovery time (actual recovery adds the monitor rebuild).
func BenchmarkReplay(b *testing.B) {
	for _, batches := range []int{64, 1024} {
		b.Run(fmt.Sprintf("batches=%d", batches), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Sync: SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < batches; i++ {
				if _, err := l.Append(mkBatch(l.NextSeq(), 512)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(batches) * 512 * edgeSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Replay(0, func(Record) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			l.Close()
		})
	}
}
