package wal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkAppend measures the per-batch logging cost on the ingest hot
// path for each fsync policy (512-edge batches, the ingester default).
func BenchmarkAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  SyncPolicy
	}{{"off", SyncNone}, {"interval", SyncInterval}, {"batch", SyncBatch}} {
		b.Run(tc.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: tc.pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := mkBatch(0, 512)
			b.SetBytes(512 * edgeSize)
			b.ReportAllocs() // steady-state appends reuse l.scratch: expect 0 allocs/op
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAppendAllocs pins the hot append path as allocation-free in steady
// state: the record encode buffer (Log.scratch) is reused across appends,
// so after the first append has grown it, logging a batch allocates
// nothing. A regression here (a fresh encode buffer per batch) would put
// one ~12 KiB allocation per flushed batch on the durable ingest path.
func TestAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the plain build asserts allocs")
	}
	l, err := Open(t.TempDir(), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := mkBatch(0, 512)
	if _, err := l.Append(batch); err != nil { // grow scratch once
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state Append allocates %.1f objects/op, want 0 (encode buffer not reused?)", avg)
	}
}

// BenchmarkSnapshotWrite measures the checkpoint-side cost of persisting
// a live-edge snapshot (64k edges ≈ a mid-sized window).
func BenchmarkSnapshotWrite(b *testing.B) {
	dir := b.TempDir()
	edges := mkBatch(0, 64<<10)
	b.SetBytes(int64(len(edges)) * edgeSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := CreateSnapshot(dir, uint64(i), uint64(len(edges)))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Append(edges); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRead measures raw snapshot load+validate speed — the
// floor under snapshot-seeded recovery (actual recovery adds the one
// mega-batch monitor apply).
func BenchmarkSnapshotRead(b *testing.B) {
	dir := b.TempDir()
	edges := mkBatch(0, 64<<10)
	w, err := CreateSnapshot(dir, 0, uint64(len(edges)))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Append(edges); err != nil {
		b.Fatal(err)
	}
	name, err := w.Commit()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(edges)) * edgeSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := ReadSnapshot(filepath.Join(dir, name))
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Edges) != len(edges) {
			b.Fatal("short read")
		}
	}
}

// BenchmarkReplay measures raw decode+deliver speed — the floor under
// crash-recovery time (actual recovery adds the monitor rebuild).
func BenchmarkReplay(b *testing.B) {
	for _, batches := range []int{64, 1024} {
		b.Run(fmt.Sprintf("batches=%d", batches), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Sync: SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < batches; i++ {
				if _, err := l.Append(mkBatch(l.NextSeq(), 512)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(batches) * 512 * edgeSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Replay(0, func(Record) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			l.Close()
		})
	}
}
