package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"

	"repro/internal/fault"
)

// Snapshot files are the compaction layer over the segment log: a window's
// live (unexpired) arrival suffix, persisted verbatim in arrival order so
// recovery can seed the window with one mega-batch apply and replay only
// the log records after the snapshot instead of the whole unexpired
// suffix. No structure state is ever serialized — the paper's recency
// weights make every monitor forest a canonical function of the arrival
// sequence, so the edge list IS the window state.
//
// Snapshot wire format (little-endian):
//
//	header (32 bytes):
//	  [0:4)   magic "SWSN"
//	  [4:8)   u32 format version (1)
//	  [8:16)  u64 watermark — arrivals expired before the first edge, i.e.
//	          the absolute arrival index of edge 0
//	  [16:24) u64 count
//	  [24:28) u32 reserved (zero)
//	  [28:32) u32 CRC-32C of bytes [0:28)
//	payload: count × (u32 u | u32 v | u64 w | u64 t)  — the record edge encoding
//	trailer: u32 CRC-32C of the payload
//
// A snapshot covers arrivals [Watermark, Watermark+count); log replay
// resumes at the end of that range. Files are written to a temp name and
// renamed into place after an fsync, so a *.snap file is always complete:
// any decode failure means corruption, never an interrupted write, and
// recovery treats it by falling back to an older snapshot or a full
// suffix replay — a snapshot is an accelerator, losing one must never
// lose data (the commit ordering in the checkpoint guarantees the log
// still holds everything a discarded snapshot covered, unless a newer
// snapshot made those segments GC-eligible).
const (
	snapHeaderSize = 32
	snapVersion    = 1
)

var snapMagic = [4]byte{'S', 'W', 'S', 'N'}

// Snapshot is one decoded snapshot: the live window's edges in arrival
// order, with Watermark arrivals expired before Edges[0].
type Snapshot struct {
	Watermark uint64
	Edges     []Edge
}

// End returns the arrival index one past the snapshot's last edge — the
// point log replay resumes from.
func (s Snapshot) End() uint64 { return s.Watermark + uint64(len(s.Edges)) }

// SnapshotName returns the filename of a snapshot taken at the given
// watermark. Watermarks only advance, so lexicographic filename order is
// recency order and the newest snapshot is the numerically largest name.
func SnapshotName(watermark uint64) string { return seqName(watermark, ".snap") }

// ParseSnapshotName inverts SnapshotName.
func ParseSnapshotName(name string) (uint64, bool) { return parseSeqName(name, ".snap") }

// Snapshots lists the watermarks of the snapshot files in dir, ascending.
// A missing directory is an empty list, not an error.
func Snapshots(dir string) ([]uint64, error) { return SnapshotsFS(fault.OS(), dir) }

// SnapshotsFS is Snapshots through an injectable filesystem.
func SnapshotsFS(fsys fault.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range entries {
		if wm, ok := ParseSnapshotName(ent.Name()); ok {
			out = append(out, wm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// PruneSnapshots deletes every snapshot file in dir except keep. Call only
// after the manifest pointing at keep is durable: until then an older
// snapshot may still be the one a crashed restart needs.
func PruneSnapshots(dir, keep string) (pruned int, err error) {
	return PruneSnapshotsFS(fault.OS(), dir, keep)
}

// PruneSnapshotsFS is PruneSnapshots through an injectable filesystem.
func PruneSnapshotsFS(fsys fault.FS, dir, keep string) (pruned int, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, ent := range entries {
		if _, ok := ParseSnapshotName(ent.Name()); ok && ent.Name() != keep {
			if err := fsys.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return pruned, err
			}
			pruned++
		}
	}
	if pruned > 0 {
		syncDir(fsys, dir)
	}
	return pruned, nil
}

// DecodeSnapshot decodes (and fully validates) one snapshot image. Every
// field is cross-checked against the data length and both CRCs, so
// arbitrary corruption yields an error, never a partial or silent
// misread. Allocation is bounded by len(data): the count field must agree
// with the actual payload size before any edge slice is allocated.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	if len(data) < snapHeaderSize+4 {
		return Snapshot{}, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != snapMagic {
		return Snapshot{}, fmt.Errorf("wal: bad snapshot magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return Snapshot{}, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	if got, want := crc32.Checksum(data[:snapHeaderSize-4], castagnoli), binary.LittleEndian.Uint32(data[snapHeaderSize-4:]); got != want {
		return Snapshot{}, fmt.Errorf("wal: snapshot header CRC mismatch (got %08x, want %08x)", got, want)
	}
	if r := binary.LittleEndian.Uint32(data[24:]); r != 0 {
		// The writer always zeroes the reserved field; accepting anything
		// else would admit non-canonical images (decode must only accept
		// bytes the writer could have produced).
		return Snapshot{}, fmt.Errorf("wal: snapshot reserved field %08x, want 0", r)
	}
	count := binary.LittleEndian.Uint64(data[16:])
	payloadLen := len(data) - snapHeaderSize - 4
	if payloadLen%edgeSize != 0 || count != uint64(payloadLen/edgeSize) {
		return Snapshot{}, fmt.Errorf("wal: snapshot count %d disagrees with payload length %d", count, payloadLen)
	}
	if wm := binary.LittleEndian.Uint64(data[8:]); wm > ^uint64(0)-count {
		// The arrival range [watermark, watermark+count) must not wrap:
		// replay-start and base arithmetic downstream assume it doesn't.
		return Snapshot{}, fmt.Errorf("wal: snapshot watermark %d overflows with count %d", wm, count)
	}
	payload := data[snapHeaderSize : len(data)-4]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[len(data)-4:]); got != want {
		return Snapshot{}, fmt.Errorf("wal: snapshot payload CRC mismatch (got %08x, want %08x)", got, want)
	}
	s := Snapshot{
		Watermark: binary.LittleEndian.Uint64(data[8:]),
		Edges:     make([]Edge, count),
	}
	for i := range s.Edges {
		s.Edges[i] = getEdge(payload[i*edgeSize:])
	}
	return s, nil
}

// ReadSnapshot loads and validates the snapshot file at path.
func ReadSnapshot(path string) (Snapshot, error) { return ReadSnapshotFS(fault.OS(), path) }

// ReadSnapshotFS is ReadSnapshot through an injectable filesystem.
func ReadSnapshotFS(fsys fault.FS, path string) (Snapshot, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	return DecodeSnapshot(data)
}

// SnapshotWriter streams one snapshot to disk: header first, edges in as
// many Append calls as the producer likes, then Commit writes the payload
// CRC trailer, fsyncs, and atomically renames the temp file into place.
// Anything short of a successful Commit leaves no *.snap file behind.
type SnapshotWriter struct {
	fs        fault.FS
	dir, tmp  string
	f         fault.File
	crc       uint32
	want, got uint64
	watermark uint64
	buf       []byte
	done      bool
}

// snapTmpPrefix names in-progress snapshot temp files; Open sweeps
// leftovers from crashed checkpoints.
const snapTmpPrefix = ".snap-tmp-"

// CreateSnapshot starts writing a snapshot of count edges whose first edge
// is absolute arrival watermark. The count is fixed up front (it is in the
// CRC-protected header); Commit fails if the appended total disagrees.
func CreateSnapshot(dir string, watermark, count uint64) (*SnapshotWriter, error) {
	return CreateSnapshotFS(fault.OS(), dir, watermark, count)
}

// CreateSnapshotFS is CreateSnapshot through an injectable filesystem.
func CreateSnapshotFS(fsys fault.FS, dir string, watermark, count uint64) (*SnapshotWriter, error) {
	f, err := fsys.CreateTemp(dir, snapTmpPrefix+"*")
	if err != nil {
		return nil, err
	}
	var hdr [snapHeaderSize]byte
	copy(hdr[0:], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:], watermark)
	binary.LittleEndian.PutUint64(hdr[16:], count)
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[:snapHeaderSize-4], castagnoli))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return nil, err
	}
	return &SnapshotWriter{fs: fsys, dir: dir, tmp: f.Name(), f: f, want: count, watermark: watermark}, nil
}

// Append encodes and writes a run of edges.
func (w *SnapshotWriter) Append(edges []Edge) error {
	if w.done {
		return errors.New("wal: snapshot writer already finished")
	}
	w.buf = w.buf[:0]
	for _, e := range edges {
		w.buf = append(w.buf, make([]byte, edgeSize)...)
		putEdge(w.buf[len(w.buf)-edgeSize:], e)
	}
	w.crc = crc32.Update(w.crc, castagnoli, w.buf)
	if _, err := w.f.Write(w.buf); err != nil {
		w.Abort()
		return err
	}
	w.got += uint64(len(edges))
	return nil
}

// Commit finishes the snapshot: trailer CRC, fsync, rename to the final
// SnapshotName, directory fsync. Returns the committed filename.
func (w *SnapshotWriter) Commit() (string, error) {
	if w.done {
		return "", errors.New("wal: snapshot writer already finished")
	}
	if w.got != w.want {
		w.Abort()
		return "", fmt.Errorf("wal: snapshot appended %d edges, header promised %d", w.got, w.want)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], w.crc)
	if _, err := w.f.Write(trailer[:]); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.f.Close(); err != nil {
		w.done = true
		w.fs.Remove(w.tmp)
		return "", err
	}
	w.done = true
	name := SnapshotName(w.watermark)
	if err := w.fs.Rename(w.tmp, filepath.Join(w.dir, name)); err != nil {
		w.fs.Remove(w.tmp)
		return "", err
	}
	syncDir(w.fs, w.dir)
	return name, nil
}

// Abort discards the in-progress snapshot; safe to call after Commit.
func (w *SnapshotWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	w.fs.Remove(w.tmp)
}
