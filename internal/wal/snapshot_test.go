package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snapEdges(n int, seed int64) []Edge {
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			U: int32(i % 97),
			V: int32((i + 13) % 97),
			W: seed + int64(i),
			T: 1_700_000_000_000_000_000 + int64(i)*1e6,
		}
	}
	return edges
}

func writeSnapshot(t *testing.T, dir string, watermark uint64, edges []Edge, chunks int) string {
	t.Helper()
	w, err := CreateSnapshot(dir, watermark, uint64(len(edges)))
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 1 {
		chunks = 1
	}
	per := (len(edges) + chunks - 1) / chunks
	for off := 0; off < len(edges); off += per {
		end := off + per
		if end > len(edges) {
			end = len(edges)
		}
		if err := w.Append(edges[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	name, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return name
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := snapEdges(257, 5)
	name := writeSnapshot(t, dir, 42, edges, 7)
	if name != SnapshotName(42) {
		t.Fatalf("committed name %q, want %q", name, SnapshotName(42))
	}
	s, err := ReadSnapshot(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if s.Watermark != 42 || s.End() != 42+257 {
		t.Fatalf("watermark %d end %d, want 42 and 299", s.Watermark, s.End())
	}
	if len(s.Edges) != len(edges) {
		t.Fatalf("decoded %d edges, want %d", len(s.Edges), len(edges))
	}
	for i := range edges {
		if s.Edges[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, s.Edges[i], edges[i])
		}
	}
	// A zero-edge snapshot (empty window past the watermark) round-trips too.
	name = writeSnapshot(t, dir, 300, nil, 1)
	if s, err = ReadSnapshot(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
	if s.Watermark != 300 || len(s.Edges) != 0 {
		t.Fatalf("empty snapshot decoded as %+v", s)
	}
}

// TestSnapshotEveryByteCorruption: flipping ANY byte of a committed
// snapshot must make it unreadable — every byte is covered by the magic,
// the version check, the header CRC, or the payload CRC.
func TestSnapshotEveryByteCorruption(t *testing.T) {
	dir := t.TempDir()
	edges := snapEdges(9, 1)
	name := writeSnapshot(t, dir, 7, edges, 2)
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xA5
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(data))
		}
	}
	// Truncation at every length is detected as well.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(data))
		}
	}
}

// TestSnapshotCommitAtomicity: an uncommitted writer leaves no *.snap
// file, a count mismatch refuses to commit, and Abort cleans the temp.
func TestSnapshotCommitAtomicity(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateSnapshot(dir, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snapEdges(4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err == nil {
		t.Fatal("commit with 4 of 10 promised edges must fail")
	}
	assertNoSnapshots(t, dir)

	w, err = CreateSnapshot(dir, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snapEdges(3, 0)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := w.Commit(); err == nil {
		t.Fatal("commit after abort must fail")
	}
	assertNoSnapshots(t, dir)
}

func assertNoSnapshots(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".snap") {
			t.Fatalf("unexpected snapshot file %q", ent.Name())
		}
		if strings.HasPrefix(ent.Name(), ".snap-tmp-") {
			t.Fatalf("leaked snapshot temp file %q", ent.Name())
		}
	}
}

// TestOpenSweepsSnapshotTemps: a crash mid-snapshot leaves a temp file
// behind; the next Open of the window's log removes it, without touching
// committed snapshots.
func TestOpenSweepsSnapshotTemps(t *testing.T) {
	dir := t.TempDir()
	// An abandoned writer — the crash image: temp written, never renamed.
	w, err := CreateSnapshot(dir, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snapEdges(2, 0)); err != nil {
		t.Fatal(err)
	}
	committed := writeSnapshot(t, dir, 9, snapEdges(2, 0), 1)
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), snapTmpPrefix) {
			t.Fatalf("Open left snapshot temp %q behind", ent.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, committed)); err != nil {
		t.Fatalf("Open removed a committed snapshot: %v", err)
	}
}

// TestSnapshotListingAndPrune: Snapshots sorts ascending, PruneSnapshots
// keeps exactly the named survivor, and both tolerate unrelated files.
func TestSnapshotListingAndPrune(t *testing.T) {
	dir := t.TempDir()
	for _, wm := range []uint64{900, 5, 77} {
		writeSnapshot(t, dir, wm, snapEdges(3, int64(wm)), 1)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-snapshot.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	marks, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 3 || marks[0] != 5 || marks[1] != 77 || marks[2] != 900 {
		t.Fatalf("Snapshots = %v, want [5 77 900]", marks)
	}
	pruned, err := PruneSnapshots(dir, SnapshotName(900))
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 2 {
		t.Fatalf("pruned %d snapshots, want 2", pruned)
	}
	marks, err = Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 || marks[0] != 900 {
		t.Fatalf("after prune Snapshots = %v, want [900]", marks)
	}
	if _, err := os.Stat(filepath.Join(dir, "not-a-snapshot.txt")); err != nil {
		t.Fatalf("prune touched an unrelated file: %v", err)
	}
	// A missing directory lists empty rather than erroring.
	if marks, err := Snapshots(filepath.Join(dir, "nope")); err != nil || len(marks) != 0 {
		t.Fatalf("missing dir: %v %v", marks, err)
	}
}

func TestParseSnapshotName(t *testing.T) {
	for _, wm := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, ok := ParseSnapshotName(SnapshotName(wm))
		if !ok || got != wm {
			t.Fatalf("round trip of %d: got %d ok=%v", wm, got, ok)
		}
	}
	for _, bad := range []string{"", "x.snap", "0000000000000000000a.snap", "00000000000000000001.seg", "00000000000000000001.snapx"} {
		if _, ok := ParseSnapshotName(bad); ok {
			t.Fatalf("ParseSnapshotName(%q) accepted", bad)
		}
	}
}

// TestLogAdvanceTo: raising nextSeq numbers subsequent appends after the
// snapshot range; raising to a lower value is a no-op.
func TestLogAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(snapEdges(3, 0)); err != nil {
		t.Fatal(err)
	}
	l.AdvanceTo(2) // below nextSeq: no-op
	if got := l.NextSeq(); got != 3 {
		t.Fatalf("NextSeq = %d after no-op AdvanceTo, want 3", got)
	}
	l.AdvanceTo(100)
	if got := l.NextSeq(); got != 100 {
		t.Fatalf("NextSeq = %d, want 100", got)
	}
	seq, err := l.Append(snapEdges(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 100 {
		t.Fatalf("post-advance append at %d, want 100", seq)
	}
	// Replay from the snapshot end sees exactly the post-advance records.
	var seqs []uint64
	if _, err := l.Replay(100, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 100 {
		t.Fatalf("replay past 100 saw %v", seqs)
	}
}

func TestLogFirstSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, ok := l.FirstSeq(); ok {
		t.Fatal("empty log reported a first seq")
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(snapEdges(2, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if first, ok := l.FirstSeq(); !ok || first != 0 {
		t.Fatalf("FirstSeq = %d %v, want 0 true", first, ok)
	}
	if _, err := l.Prune(6); err != nil {
		t.Fatal(err)
	}
	first, ok := l.FirstSeq()
	if !ok || first == 0 || first > 6 {
		t.Fatalf("post-prune FirstSeq = %d %v, want in (0, 6]", first, ok)
	}
}
