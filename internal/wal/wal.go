// Package wal is the durability layer under the streaming window service:
// a segmented, CRC-checked, append-only batch log per window, plus an
// atomically-updated registry manifest.
//
// The paper's windowing discipline makes durability unusually cheap. Edge
// arrivals carry consecutive global timestamps τ = 1, 2, ... and expiry
// only ever removes an arrival-order prefix (the recent-edge property,
// Lemma 5.1), so a window's full state is reconstructible by replaying
// just its unexpired arrival suffix — none of the rctree/sparsifier
// internals ever need to be serialized. The log therefore records exactly
// what the window manager applied: one record per batch, carrying the
// batch's first arrival index (seq), and the edges with their clamped
// event times.
//
// Record wire format (little-endian):
//
//	u32 payload length | u32 CRC-32C of payload | payload
//	payload = u64 seq | u32 count | count × (u32 u | u32 v | u64 w | u64 t)
//
// Records are grouped into segment files named %020d.seg after the seq of
// their first record, rotated once a segment passes Options.SegmentBytes.
// A segment whose successor's first seq is at or below the expiry
// low-watermark contains only expired arrivals and is deleted by Prune.
//
// Torn writes are tolerated at the tail: Open scans the last segment and
// truncates it at the first record that is short, mis-sized, or fails its
// CRC, keeping the valid prefix. Corruption anywhere before the tail is a
// hard error — that is lost acknowledged data, not an interrupted write,
// and recovery must fail loudly rather than silently drop the suffix.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Edge is one logged edge arrival. T is the event time in Unix
// nanoseconds, already clamped by the window manager (monotone
// non-decreasing, never in the future), so replaying it through the same
// clamp is a no-op and time-based expiry reproduces exactly.
type Edge struct {
	U, V int32
	W    int64
	T    int64
}

// Record is one logged batch: Seq is the global arrival index of
// Edges[0], so the record covers arrivals [Seq, Seq+len(Edges)).
type Record struct {
	Seq   uint64
	Edges []Edge
}

// End returns the arrival index one past the record's last edge.
func (r Record) End() uint64 { return r.Seq + uint64(len(r.Edges)) }

const (
	recHeaderSize  = 8  // u32 length + u32 crc
	payloadFixed   = 12 // u64 seq + u32 count
	edgeSize       = 24 // u32 u + u32 v + u64 w + u64 t
	maxPayloadSize = 64 << 20
)

// castagnoli is the CRC-32C polynomial, hardware-accelerated on amd64 and
// arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// seqName formats the shared 20-digit-decimal file naming of segments and
// snapshots: zero-padded so lexicographic order is numeric order.
func seqName(seq uint64, ext string) string { return fmt.Sprintf("%020d%s", seq, ext) }

// parseSeqName inverts seqName for the given extension.
func parseSeqName(name, ext string) (uint64, bool) {
	if len(name) != 20+len(ext) || name[20:] != ext {
		return 0, false
	}
	var seq uint64
	for i := 0; i < 20; i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// errTorn marks a record cut short by a crash mid-write: scanning stops
// here and the valid prefix stands.
var errTorn = fmt.Errorf("wal: torn record at segment tail")

// putEdge encodes one edge into the 24 bytes at b — the shared encoding of
// log records and snapshot payloads.
func putEdge(b []byte, e Edge) {
	binary.LittleEndian.PutUint32(b[0:], uint32(e.U))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.V))
	binary.LittleEndian.PutUint64(b[8:], uint64(e.W))
	binary.LittleEndian.PutUint64(b[16:], uint64(e.T))
}

// getEdge decodes the edge at the head of b.
func getEdge(b []byte) Edge {
	return Edge{
		U: int32(binary.LittleEndian.Uint32(b[0:])),
		V: int32(binary.LittleEndian.Uint32(b[4:])),
		W: int64(binary.LittleEndian.Uint64(b[8:])),
		T: int64(binary.LittleEndian.Uint64(b[16:])),
	}
}

// appendRecord encodes one record onto buf and returns the extended slice.
func appendRecord(buf []byte, seq uint64, edges []Edge) []byte {
	payloadLen := payloadFixed + edgeSize*len(edges)
	start := len(buf)
	buf = append(buf, make([]byte, recHeaderSize+payloadLen)...)
	payload := buf[start+recHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:], seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(edges)))
	off := payloadFixed
	for _, e := range edges {
		putEdge(payload[off:], e)
		off += edgeSize
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord decodes the record at the head of b, returning it and the
// number of bytes consumed. A record cut short by a crash yields errTorn;
// a record whose length field or CRC is inconsistent yields a descriptive
// error — the caller decides whether its position makes that a repairable
// tail or lost data.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, errTorn
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:]))
	if payloadLen < payloadFixed || payloadLen > maxPayloadSize ||
		(payloadLen-payloadFixed)%edgeSize != 0 {
		return Record{}, 0, fmt.Errorf("wal: bad record length %d", payloadLen)
	}
	if len(b) < recHeaderSize+payloadLen {
		return Record{}, 0, errTorn
	}
	payload := b[recHeaderSize : recHeaderSize+payloadLen]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, fmt.Errorf("wal: record CRC mismatch (got %08x, want %08x)", got, want)
	}
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	if payloadLen != payloadFixed+edgeSize*count {
		return Record{}, 0, fmt.Errorf("wal: record count %d disagrees with length %d", count, payloadLen)
	}
	if seq := binary.LittleEndian.Uint64(payload[0:]); seq > ^uint64(0)-uint64(count) {
		// The arrival range [seq, seq+count) must not wrap: watermark
		// comparisons and base arithmetic downstream assume it doesn't.
		return Record{}, 0, fmt.Errorf("wal: record seq %d overflows with count %d", seq, count)
	}
	rec := Record{
		Seq:   binary.LittleEndian.Uint64(payload[0:]),
		Edges: make([]Edge, count),
	}
	off := payloadFixed
	for i := range rec.Edges {
		rec.Edges[i] = getEdge(payload[off:])
		off += edgeSize
	}
	return rec, recHeaderSize + payloadLen, nil
}
