package wal

import (
	"errors"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// TestHealAfterAppendFault drives an injected EIO through Append, heals the
// log, and proves appends resume on a fresh segment with the arrival
// numbering advanced past the gap — the exact sequence the stream layer's
// degraded-window re-arm performs.
func TestHealAfterAppendFault(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	l, err := Open(dir, Options{SegmentBytes: 1 << 20, Sync: SyncNone, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := appendBatches(t, l, []int{3, 2})
	failFrom := l.NextSeq()

	// Every write fails until the rule is cleared.
	id, err := inj.Set(fault.Rule{Op: fault.OpWrite, Kind: fault.KindEIO})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(failFrom, 4)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append under fault = %v, want EIO", err)
	}
	if l.NextSeq() != failFrom {
		t.Fatalf("failed append advanced nextSeq to %d", l.NextSeq())
	}

	// Device recovers; the failed batch's 4 edges are gone (the caller is
	// responsible for superseding them with a snapshot). Heal, advance past
	// the gap, and resume.
	inj.Clear(id)
	if err := l.Heal(); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	l.AdvanceTo(failFrom + 4)
	resumed := appendBatches(t, l, []int{2})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	got, _ := replayAll(t, l, 0)
	want = append(want, resumed...)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || len(got[i].Edges) != len(want[i].Edges) {
			t.Fatalf("record %d: seq %d/%d edges %d/%d", i, got[i].Seq, want[i].Seq, len(got[i].Edges), len(want[i].Edges))
		}
	}
	if got[len(got)-1].Seq != failFrom+4 {
		t.Fatalf("resumed record at seq %d, want %d", got[len(got)-1].Seq, failFrom+4)
	}

	// Replay above the post-gap watermark never touches the abandoned range.
	above, _ := replayAll(t, l, failFrom+4)
	if len(above) != 1 || above[0].Seq != failFrom+4 {
		t.Fatalf("replay above gap = %+v", above)
	}
}

// TestHealPoisonedRollback wedges the rollback too (write fails AND the
// truncate rollback fails), leaving the log poisoned, then heals: the
// poisoned segment held no complete record, so Heal truncates and reuses it.
func TestHealPoisonedRollback(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	l, err := Open(dir, Options{SegmentBytes: 1 << 20, Sync: SyncNone, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// First write of a fresh segment: short write lands half a record, then
	// the rollback truncate fails → poison.
	if _, err := inj.Set(fault.Rule{Op: fault.OpWrite, Kind: fault.KindShort, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Set(fault.Rule{Op: fault.OpTruncate, Kind: fault.KindEIO, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(0, 3)); err == nil {
		t.Fatal("Append under short-write fault succeeded")
	}
	if _, err := l.Append(mkBatch(0, 1)); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned append = %v", err)
	}

	if err := l.Heal(); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	l.AdvanceTo(3)
	if _, err := l.Append(mkBatch(3, 2)); err != nil {
		t.Fatalf("post-heal append: %v", err)
	}
	got, _ := replayAll(t, l, 0)
	if len(got) != 1 || got[0].Seq != 3 || len(got[0].Edges) != 2 {
		t.Fatalf("replay after poisoned heal = %+v", got)
	}
	// Exactly one segment: the torn one was truncated and reused, so the
	// half-written garbage cannot survive anywhere.
	if l.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", l.Segments())
	}
}

// TestHealKeepsCommittedRecords wedges fsync so rotation fails, then checks
// Heal abandons the record-bearing segment without destroying its records.
func TestHealKeepsCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	l, err := Open(dir, Options{SegmentBytes: 1 << 20, Sync: SyncBatch, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := appendBatches(t, l, []int{5})
	id, err := inj.Set(fault.Rule{Op: fault.OpSync, Kind: fault.KindEIO})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkBatch(5, 2)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append with failing fsync = %v, want EIO", err)
	}
	// The record was written before the fsync failed, but after an EIO the
	// kernel may have dropped the dirty pages — the heal path abandons the
	// fd and treats the batch as gapped.
	inj.Clear(id)
	if err := l.Heal(); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	l.AdvanceTo(7 + 2) // gap: the fsync-failed batch [5,7) plus 2 skipped arrivals
	resumed := appendBatches(t, l, []int{1})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 2 {
		t.Fatalf("segments = %d, want 2 (old kept, fresh armed)", l.Segments())
	}
	got, _ := replayAll(t, l, 0)
	if len(got) < 1+len(resumed) {
		t.Fatalf("replayed %d records, want at least %d", len(got), 1+len(resumed))
	}
	if got[0].Seq != want[0].Seq {
		t.Fatalf("first record seq %d, want %d", got[0].Seq, want[0].Seq)
	}
	if got[len(got)-1].Seq != 9 {
		t.Fatalf("resumed seq %d, want 9", got[len(got)-1].Seq)
	}
}
