package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when Append calls fsync.
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per Options.SyncEvery, bounding
	// data-at-risk on power loss to one interval of arrivals. The default.
	SyncInterval SyncPolicy = iota
	// SyncBatch fsyncs after every appended batch: nothing acknowledged is
	// ever lost, at the price of one fsync per flush.
	SyncBatch
	// SyncNone never fsyncs from the hot path; the OS flushes at its
	// leisure. Process crashes lose nothing (the page cache survives);
	// power loss can lose everything since the last rotation or Sync.
	SyncNone
)

// Options tunes a Log; zero values select defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB). A record
	// never spans segments; a segment holds at least one record even when
	// the record alone exceeds the threshold.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration

	// Observation hooks, all optional. The wal package stays free of any
	// metrics dependency; the stream layer injects closures that feed its
	// telemetry registry. Hooks run outside l.mu where possible and must
	// be cheap and non-blocking.
	//
	// ObserveAppend fires once per written record with the write latency
	// (encode + write, excluding any fsync), the edge count, and the
	// encoded byte size.
	ObserveAppend func(d time.Duration, edges, bytes int)
	// ObserveFsync fires once per fsync of the active segment with its
	// latency.
	ObserveFsync func(d time.Duration)
	// ObserveRepair fires when Open truncates a torn or corrupt tail,
	// with the number of bytes discarded.
	ObserveRepair func(bytes int64)

	// FS abstracts the filesystem (default: the real one). Chaos tests and
	// the /admin/fault plane hand in a fault.Injector here to exercise
	// EIO/ENOSPC/short-write/fsync failures per operation.
	FS fault.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = fault.OS()
	}
	return o
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Records        int64 // records delivered
	Edges          int64 // edges delivered
	SkippedRecords int64 // records entirely below the watermark
	Segments       int   // segment files visited
}

// Log is one window's append-only batch log. All methods are safe for
// concurrent use; in the service pipeline Append is called by the single
// flush goroutine while Sync/Prune arrive from checkpoint goroutines.
type Log struct {
	mu       sync.Mutex
	dir      string
	opt      Options
	f        fault.File // active segment (nil until the first append)
	size     int64
	segs     []uint64 // first seq of every segment file, ascending
	nextSeq  uint64
	lastSync time.Time
	dirty    bool // bytes written since the last successful fsync
	closed   bool
	poisoned error // set when a failed append could not be rolled back
	scratch  []byte
}

func segName(firstSeq uint64) string { return seqName(firstSeq, ".seg") }

func parseSegName(name string) (uint64, bool) { return parseSeqName(name, ".seg") }

// Open opens (creating if necessary) the log in dir and repairs its tail:
// the last segment is scanned and truncated at the first torn or corrupt
// record, so the log always resumes appending after the last fully-written
// batch.
func Open(dir string, opt Options) (*Log, error) {
	l := &Log{dir: dir, opt: opt.withDefaults(), lastSync: time.Now()}
	if err := l.opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := l.opt.FS.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if seq, ok := parseSegName(ent.Name()); ok {
			l.segs = append(l.segs, seq)
		} else if strings.HasPrefix(ent.Name(), snapTmpPrefix) {
			// A crash mid-snapshot leaves its temp file behind (Commit's
			// rename never ran, so no *.snap name ever points at it); sweep
			// it here or every crashed checkpoint leaks up to a full
			// window's worth of bytes. No checkpoint can be writing one
			// now: Open runs only at recovery or window creation.
			_ = l.opt.FS.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	if len(l.segs) == 0 {
		return l, nil
	}
	if err := l.openTail(); err != nil {
		return nil, err
	}
	return l, nil
}

// openTail repairs the last segment and opens it for appending.
func (l *Log) openTail() error {
	first := l.segs[len(l.segs)-1]
	path := filepath.Join(l.dir, segName(first))
	data, err := l.opt.FS.ReadFile(path)
	if err != nil {
		return err
	}
	valid := 0
	end := first
	for valid < len(data) {
		rec, n, err := decodeRecord(data[valid:])
		if err != nil {
			break // torn or corrupt tail: keep the valid prefix
		}
		valid += n
		end = rec.End()
	}
	f, err := l.opt.FS.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return err
		}
		if l.opt.ObserveRepair != nil {
			l.opt.ObserveRepair(int64(len(data) - valid))
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = int64(valid)
	l.nextSeq = end
	return nil
}

// NextSeq returns the arrival index the next appended batch will start at.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// FirstSeq returns the first arrival index covered by the oldest retained
// segment; ok is false when the log has no segments at all. Recovery uses
// it to detect gaps: replay from watermark w is complete only when
// FirstSeq ≤ w (pruned segments below w were never needed) — a larger
// FirstSeq means records past the replay start were GC'd on the strength
// of a snapshot that must then be present and valid.
func (l *Log) FirstSeq() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0, false
	}
	return l.segs[0], true
}

// AdvanceTo raises the next append seq to at least seq. Recovery calls it
// when a loaded snapshot extends past the durable log end (possible only
// if log bytes vanished after the snapshot committed — the checkpoint
// fsyncs the log through the snapshot's last edge before the rename):
// appends must continue the window's arrival numbering after the
// snapshot, never reuse indices the snapshot already covers, or a later
// replay would skip the reused range as already-snapshotted.
func (l *Log) AdvanceTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.nextSeq {
		l.nextSeq = seq
	}
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// maxEdgesPerRecord keeps every written record under maxPayloadSize, the
// bound decodeRecord enforces — an acknowledged record the reader would
// reject is worse than no record at all.
const maxEdgesPerRecord = (maxPayloadSize - payloadFixed) / edgeSize

// Append logs one batch and returns the arrival index of its first edge.
// Batches beyond maxEdgesPerRecord split into several contiguous records
// (seq numbering is per edge, so replay is oblivious to the split).
// Durability follows the sync policy; the write itself always reaches the
// OS before Append returns, so a process crash (as opposed to power loss)
// loses nothing.
func (l *Log) Append(edges []Edge) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.poisoned != nil {
		return 0, fmt.Errorf("wal: log poisoned by earlier append failure: %w", l.poisoned)
	}
	if len(edges) == 0 {
		return l.nextSeq, nil
	}
	first := l.nextSeq
	for len(edges) > 0 {
		k := len(edges)
		if k > maxEdgesPerRecord {
			k = maxEdgesPerRecord
		}
		if err := l.appendLocked(edges[:k]); err != nil {
			return 0, err
		}
		edges = edges[k:]
	}
	return first, nil
}

// appendLocked encodes and writes one record, rotating and syncing per
// policy. Callers hold l.mu and have bounded len(edges).
func (l *Log) appendLocked(edges []Edge) error {
	var t0 time.Time
	if l.opt.ObserveAppend != nil {
		t0 = time.Now()
	}
	l.scratch = appendRecord(l.scratch[:0], l.nextSeq, edges)
	if l.f == nil || (l.size > 0 && l.size+int64(len(l.scratch)) > l.opt.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(l.scratch); err != nil {
		// Roll the segment back to its last record boundary: leaving a
		// short write mid-file would make every LATER successful record
		// unreachable (tail repair stops at the first bad record) and
		// shift all later seqs off the window's arrival numbering. If the
		// rollback itself fails, poison the log — refusing further
		// appends is strictly better than silently truncating them away
		// at the next recovery.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.poisoned = fmt.Errorf("%w (rollback failed: %v)", err, terr)
		} else if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.poisoned = fmt.Errorf("%w (rollback seek failed: %v)", err, serr)
		}
		return err
	}
	l.size += int64(len(l.scratch))
	l.nextSeq += uint64(len(edges))
	l.dirty = true
	if l.opt.ObserveAppend != nil {
		l.opt.ObserveAppend(time.Since(t0), len(edges), len(l.scratch))
	}
	switch l.opt.Sync {
	case SyncBatch:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rotateLocked finishes the active segment (fsyncing it so closed segments
// are always durable) and starts a new one named after nextSeq. The
// rotation fsync goes through syncLocked so it reaches ObserveFsync like
// every other sync (it also resets the interval-policy timer, which is
// right: the data is durable).
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(l.nextSeq))
	f, err := l.opt.FS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.size = 0
	l.segs = append(l.segs, l.nextSeq)
	syncDir(l.opt.FS, l.dir) // make the new file's directory entry durable
	return nil
}

// Sync fsyncs the active segment. A log with nothing written since the
// last successful sync is a cheap no-op — durable-ack escalation under
// fsync=batch (where every append already synced) costs a mutex hop, not
// an fsync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	l.lastSync = time.Now()
	if l.f == nil || !l.dirty {
		return nil
	}
	var err error
	if l.opt.ObserveFsync == nil {
		err = l.f.Sync()
	} else {
		t0 := time.Now()
		err = l.f.Sync()
		l.opt.ObserveFsync(time.Since(t0))
	}
	if err == nil {
		l.dirty = false
	}
	return err
}

// Heal abandons the active segment after an append or fsync failure and
// arms a fresh one at nextSeq, clearing any poison. It never destroys
// committed records: when the active segment already holds records (its
// first seq is below nextSeq) it is left as-is — only its fd, whose dirty
// pages the kernel may have dropped after an EIO, is abandoned — and a new
// segment file takes over. When the active segment holds no complete record
// (first seq == nextSeq), its bytes are at most a torn write with a failed
// rollback, so it is truncated to zero and reused.
//
// Heal restores append health only. The arrival gap left by appends that
// failed (or were skipped while degraded) is NOT closed here; the caller
// must supersede it — AdvanceTo past the gap plus a snapshot covering it —
// before recovery is correct again.
func (l *Log) Heal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil && l.poisoned == nil {
		return nil // nothing ever went wrong, or nothing was ever opened
	}
	if l.f != nil {
		_ = l.f.Close() // fd state is unknown after EIO; errors are moot
		l.f = nil
	}
	if len(l.segs) > 0 && l.segs[len(l.segs)-1] == l.nextSeq {
		// Active segment has no surviving record: truncate and reuse so the
		// segment name (= first seq it will hold) stays correct.
		path := filepath.Join(l.dir, segName(l.nextSeq))
		f, err := l.opt.FS.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			_ = f.Close()
			return err
		}
		l.f = f
	} else {
		path := filepath.Join(l.dir, segName(l.nextSeq))
		f, err := l.opt.FS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		l.f = f
		l.segs = append(l.segs, l.nextSeq)
		syncDir(l.opt.FS, l.dir)
	}
	l.size = 0
	l.dirty = false
	l.poisoned = nil
	l.lastSync = time.Now()
	return nil
}

// Prune deletes segments that hold only expired arrivals: every segment
// whose successor's first seq is at or below the watermark. The active
// segment is never deleted. Call only after the manifest recording this
// watermark is durable, or a crash could need the deleted records.
func (l *Log) Prune(watermark uint64) (pruned int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for len(l.segs) >= 2 && l.segs[1] <= watermark {
		if err := l.opt.FS.Remove(filepath.Join(l.dir, segName(l.segs[0]))); err != nil {
			return pruned, err
		}
		l.segs = l.segs[1:]
		pruned++
	}
	if pruned > 0 {
		syncDir(l.opt.FS, l.dir)
	}
	return pruned, nil
}

// Replay streams every record whose arrival range extends past the
// watermark, in order, to fn. Records are delivered whole: a record
// straddling the watermark is replayed in full and the caller's expiry
// policy re-trims the already-expired prefix (deterministically — the
// logged event times and the count cap reproduce the original expiry).
// Segments entirely below the watermark are skipped without being read.
//
// A torn or corrupt record in the final segment ends the replay cleanly
// (Open's repair normally removes it first); the same damage in an
// earlier segment is an error, because acknowledged records after it
// would be silently lost.
func (l *Log) Replay(watermark uint64, fn func(Record) error) (ReplayStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var st ReplayStats
	for i, first := range l.segs {
		last := i == len(l.segs)-1
		if !last && l.segs[i+1] <= watermark {
			continue // every record in this segment is expired
		}
		data, err := l.opt.FS.ReadFile(filepath.Join(l.dir, segName(first)))
		if err != nil {
			return st, err
		}
		st.Segments++
		off := 0
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				if last {
					break
				}
				return st, fmt.Errorf("wal: segment %s corrupt at offset %d: %w", segName(first), off, err)
			}
			off += n
			if rec.End() <= watermark {
				st.SkippedRecords++
				continue
			}
			if err := fn(rec); err != nil {
				return st, err
			}
			st.Records++
			st.Edges += int64(len(rec.Edges))
		}
	}
	return st, nil
}

// Close fsyncs and closes the active segment. Further operations fail
// with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// syncDir fsyncs a directory so renames and file creations in it survive
// power loss. Best-effort: some platforms reject fsync on directories.
func syncDir(fsys fault.FS, dir string) {
	_ = fsys.SyncDir(dir)
}
