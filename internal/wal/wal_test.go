package wal

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// mkBatch builds a deterministic batch of k edges starting at arrival seq.
func mkBatch(seq uint64, k int) []Edge {
	edges := make([]Edge, k)
	for i := range edges {
		t := int64(seq) + int64(i)
		edges[i] = Edge{U: int32(t % 97), V: int32((t + 1) % 97), W: t*3 + 1, T: 1_000_000 + t}
	}
	return edges
}

// appendBatches appends batches of the given sizes and returns the records
// the log should replay.
func appendBatches(t *testing.T, l *Log, sizes []int) []Record {
	t.Helper()
	var want []Record
	for _, k := range sizes {
		seq := l.NextSeq()
		edges := mkBatch(seq, k)
		got, err := l.Append(edges)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if got != seq {
			t.Fatalf("Append seq = %d, want %d", got, seq)
		}
		want = append(want, Record{Seq: seq, Edges: edges})
	}
	return want
}

func replayAll(t *testing.T, l *Log, watermark uint64) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	st, err := l.Replay(watermark, func(rec Record) error {
		cp := Record{Seq: rec.Seq, Edges: append([]Edge(nil), rec.Edges...)}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, st
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendBatches(t, l, []int{1, 7, 512, 3, 40})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != want[len(want)-1].End() {
		t.Fatalf("NextSeq after reopen = %d, want %d", l2.NextSeq(), want[len(want)-1].End())
	}
	got, st := replayAll(t, l2, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ: got %d records, want %d", len(got), len(want))
	}
	if st.Records != int64(len(want)) || st.SkippedRecords != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLogReplayFromWatermark(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendBatches(t, l, []int{10, 10, 10, 10})

	// A watermark inside record 1 keeps record 1 (whole-record delivery)
	// and skips record 0 entirely.
	got, st := replayAll(t, l, 15)
	if len(got) != 3 || got[0].Seq != 10 {
		t.Fatalf("replay from 15: got %d records, first seq %d", len(got), got[0].Seq)
	}
	if st.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", st.SkippedRecords)
	}
	// A watermark exactly at a record boundary skips everything below it.
	got, _ = replayAll(t, l, 20)
	if len(got) != 2 || got[0].Seq != 20 {
		t.Fatalf("replay from 20: got %d records, first seq %d", len(got), got[0].Seq)
	}
	// A watermark past the end replays nothing.
	got, _ = replayAll(t, l, want[len(want)-1].End())
	if len(got) != 0 {
		t.Fatalf("replay from end: got %d records", len(got))
	}
}

func TestLogRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~2 records rotates.
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendBatches(t, l, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}) // arrivals [0, 40)
	if l.Segments() < 3 {
		t.Fatalf("expected ≥3 segments, got %d", l.Segments())
	}
	segsBefore := l.Segments()

	// Prune at watermark 17: segments entirely within [0, 17) go away.
	pruned, err := l.Prune(17)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 || l.Segments() != segsBefore-pruned {
		t.Fatalf("pruned %d, segments %d (before %d)", pruned, l.Segments(), segsBefore)
	}
	// Everything past the watermark must still replay.
	got, _ := replayAll(t, l, 17)
	var edges int
	for _, r := range got {
		if r.End() <= 17 {
			t.Fatalf("record [%d, %d) should have been skipped", r.Seq, r.End())
		}
		edges += len(r.Edges)
	}
	if edges < 40-17 {
		t.Fatalf("replayed %d edges, want at least %d", edges, 40-17)
	}
	// Pruning everything never deletes the active segment.
	if _, err := l.Prune(40); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("active segment must survive a full prune, have %d", l.Segments())
	}
	// The log keeps appending with contiguous seqs after pruning.
	seq, err := l.Append(mkBatch(l.NextSeq(), 2))
	if err != nil || seq != 40 {
		t.Fatalf("Append after prune: seq %d err %v", seq, err)
	}
}

// TestLogTornTail truncates the final record at every byte offset and
// asserts recovery keeps the valid prefix and never panics.
func TestLogTornTail(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendBatches(t, l, []int{3, 5, 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(master, segName(0))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastRecLen := recHeaderSize + payloadFixed + edgeSize*2
	prefixEnd := len(full) - lastRecLen

	for cut := prefixEnd; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got, _ := replayAll(t, l, 0)
		if !reflect.DeepEqual(got, want[:2]) {
			t.Fatalf("cut=%d: torn tail did not recover the 2-record prefix (got %d records)", cut, len(got))
		}
		if l.NextSeq() != want[1].End() {
			t.Fatalf("cut=%d: NextSeq = %d, want %d", cut, l.NextSeq(), want[1].End())
		}
		// The repaired log must accept appends that replay seamlessly.
		if _, err := l.Append(mkBatch(l.NextSeq(), 4)); err != nil {
			t.Fatalf("cut=%d: Append after repair: %v", cut, err)
		}
		got, _ = replayAll(t, l, 0)
		if len(got) != 3 || got[2].Seq != want[1].End() || len(got[2].Edges) != 4 {
			t.Fatalf("cut=%d: post-repair replay got %d records", cut, len(got))
		}
		l.Close()
	}
}

// TestLogCorruptTail flips every byte of the final record in turn; CRC (or
// the length sanity bound) must reject it and keep the prefix.
func TestLogCorruptTail(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := appendBatches(t, l, []int{3, 5, 2})
	l.Close()
	seg := filepath.Join(master, segName(0))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastRecLen := recHeaderSize + payloadFixed + edgeSize*2
	prefixEnd := len(full) - lastRecLen
	rng := rand.New(rand.NewSource(7))

	for off := prefixEnd; off < len(full); off++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[off] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(filepath.Join(dir, segName(0)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		got, _ := replayAll(t, l, 0)
		if !reflect.DeepEqual(got, want[:2]) {
			t.Fatalf("off=%d: corrupt tail did not recover the 2-record prefix (got %d records)", off, len(got))
		}
		l.Close()
	}
}

// TestLogMidLogCorruptionFailsLoudly: damage before the final segment is
// lost acknowledged data and must be an error, not a silent truncation.
func TestLogMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, l, []int{4, 4, 4, 4, 4, 4})
	if l.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", l.Segments())
	}
	l.Close()

	// Corrupt the FIRST segment's first record payload.
	first := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err) // Open only repairs the tail; mid-log damage surfaces at replay
	}
	defer l2.Close()
	_, err = l2.Replay(0, func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-log corruption must fail replay, got %v", err)
	}
}

func TestLogAppendAfterClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(mkBatch(0, 1)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Prune(0); err != ErrClosed {
		t.Fatalf("Prune after Close = %v, want ErrClosed", err)
	}
}

func TestManifestRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Windows) != 0 {
		t.Fatalf("fresh dir: %d windows", len(m.Windows))
	}
	cfg, _ := json.Marshal(map[string]any{"n": 100, "seed": 7})
	m.Windows["default"] = WindowState{Config: cfg, Watermark: 42}
	if err := SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second version; the rename must replace it whole.
	m.Windows["w1"] = WindowState{Config: cfg, Watermark: 0}
	if err := SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Windows) != 2 || got.Windows["default"].Watermark != 42 {
		t.Fatalf("loaded manifest = %+v", got)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	// A corrupt manifest is a loud error, not an empty registry.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest must fail to load")
	}
}

func TestLogSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNone, SyncBatch, SyncInterval} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		want := appendBatches(t, l, []int{5, 5})
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		l2, err := Open(dir, Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := replayAll(t, l2, 0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %d: round trip failed", pol)
		}
		l2.Close()
	}
}
