// Package ordset implements a join-based treap keyed by int64 — the
// parallel ordered-set ingredient (references [8, 9] of the paper) used by
// the sliding-window structures to hold forest edges ordered by arrival
// time. Priorities are a deterministic hash of the key, so the tree shape
// is a pure function of the key set (history independence), which keeps
// every test reproducible.
//
// The operation the sliding window leans on is SplitLeq: split off and
// return all entries with key <= watermark in O(lg n + output) time.
package ordset

import (
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

type node struct {
	key         int64
	val         wgraph.Edge
	prio        uint64
	left, right *node
	size        int
}

func sz(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() { n.size = 1 + sz(n.left) + sz(n.right) }

// Set is an ordered map from int64 keys to edges.
type Set struct {
	root *node
	salt uint64
}

// New returns an empty set. salt perturbs the treap priorities.
func New(salt uint64) *Set { return &Set{salt: salt} }

// Len returns the number of entries.
func (s *Set) Len() int { return sz(s.root) }

func (s *Set) prio(key int64) uint64 {
	return parallel.Hash2(s.salt, uint64(key))
}

// split divides t into (< key) and (>= key).
func split(t *node, key int64) (l, r *node) {
	if t == nil {
		return nil, nil
	}
	if t.key < key {
		a, b := split(t.right, key)
		t.right = a
		t.update()
		return t, b
	}
	a, b := split(t.left, key)
	t.left = b
	t.update()
	return a, t
}

// join merges l and r; all keys of l must precede all keys of r.
func join(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.right = join(l.right, r)
		l.update()
		return l
	default:
		r.left = join(l, r.left)
		r.update()
		return r
	}
}

// Insert adds or replaces the entry for key.
func (s *Set) Insert(key int64, val wgraph.Edge) {
	l, r := split(s.root, key)
	eq, rest := split(r, key+1) // eq holds the single node with this key, if any
	if eq == nil {
		eq = &node{key: key, val: val, prio: s.prio(key), size: 1}
	} else {
		eq.val = val
		eq.left, eq.right = nil, nil
		eq.update()
	}
	s.root = join(join(l, eq), rest)
}

// Delete removes the entry for key, reporting whether it existed.
func (s *Set) Delete(key int64) bool {
	l, r := split(s.root, key)
	eq, rest := split(r, key+1)
	s.root = join(l, rest)
	return eq != nil
}

// Get returns the value stored at key.
func (s *Set) Get(key int64) (wgraph.Edge, bool) {
	t := s.root
	for t != nil {
		switch {
		case key < t.key:
			t = t.left
		case key > t.key:
			t = t.right
		default:
			return t.val, true
		}
	}
	return wgraph.Edge{}, false
}

// Has reports whether key is present.
func (s *Set) Has(key int64) bool {
	_, ok := s.Get(key)
	return ok
}

// SplitLeq removes and returns (in ascending key order) every entry with
// key <= watermark.
func (s *Set) SplitLeq(watermark int64) []wgraph.Edge {
	l, r := split(s.root, watermark+1)
	s.root = r
	if l == nil {
		return nil
	}
	out := make([]wgraph.Edge, 0, sz(l))
	var walk func(t *node)
	walk = func(t *node) {
		if t == nil {
			return
		}
		walk(t.left)
		out = append(out, t.val)
		walk(t.right)
	}
	walk(l)
	return out
}

// Min returns the smallest key.
func (s *Set) Min() (int64, wgraph.Edge, bool) {
	t := s.root
	if t == nil {
		return 0, wgraph.Edge{}, false
	}
	for t.left != nil {
		t = t.left
	}
	return t.key, t.val, true
}

// Max returns the largest key.
func (s *Set) Max() (int64, wgraph.Edge, bool) {
	t := s.root
	if t == nil {
		return 0, wgraph.Edge{}, false
	}
	for t.right != nil {
		t = t.right
	}
	return t.key, t.val, true
}

// ForEach visits entries in ascending key order until fn returns false.
func (s *Set) ForEach(fn func(key int64, val wgraph.Edge) bool) {
	var walk func(t *node) bool
	walk = func(t *node) bool {
		if t == nil {
			return true
		}
		return walk(t.left) && fn(t.key, t.val) && walk(t.right)
	}
	walk(s.root)
}

// Validate checks treap invariants (tests only).
func (s *Set) Validate() error {
	var check func(t *node, lo, hi int64) error
	check = func(t *node, lo, hi int64) error {
		if t == nil {
			return nil
		}
		if t.key <= lo || t.key >= hi {
			return errOrder
		}
		if t.left != nil && t.left.prio > t.prio {
			return errHeap
		}
		if t.right != nil && t.right.prio > t.prio {
			return errHeap
		}
		if t.size != 1+sz(t.left)+sz(t.right) {
			return errSize
		}
		if err := check(t.left, lo, t.key); err != nil {
			return err
		}
		return check(t.right, t.key, hi)
	}
	return check(s.root, -1<<63, 1<<63-1)
}

type setErr string

func (e setErr) Error() string { return string(e) }

const (
	errOrder = setErr("ordset: key order violated")
	errHeap  = setErr("ordset: heap order violated")
	errSize  = setErr("ordset: size augmentation wrong")
)
