package ordset

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/wgraph"
)

func ev(id int64) wgraph.Edge { return wgraph.Edge{ID: wgraph.EdgeID(id), W: id * 3} }

func TestEmpty(t *testing.T) {
	s := New(1)
	if s.Len() != 0 {
		t.Fatal("nonzero len")
	}
	if _, ok := s.Get(5); ok {
		t.Fatal("phantom entry")
	}
	if s.Delete(5) {
		t.Fatal("phantom delete")
	}
	if got := s.SplitLeq(100); got != nil {
		t.Fatalf("split of empty: %v", got)
	}
	if _, _, ok := s.Min(); ok {
		t.Fatal("min of empty")
	}
	if _, _, ok := s.Max(); ok {
		t.Fatal("max of empty")
	}
}

func TestInsertGetDelete(t *testing.T) {
	s := New(1)
	s.Insert(5, ev(5))
	s.Insert(3, ev(3))
	s.Insert(9, ev(9))
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}
	if v, ok := s.Get(3); !ok || v.ID != 3 {
		t.Fatalf("get(3)=%v,%v", v, ok)
	}
	if !s.Has(9) || s.Has(4) {
		t.Fatal("Has wrong")
	}
	s.Insert(3, ev(33)) // replace
	if v, _ := s.Get(3); v.ID != 33 {
		t.Fatalf("replace failed: %v", v)
	}
	if s.Len() != 3 {
		t.Fatalf("len after replace=%d", s.Len())
	}
	if !s.Delete(5) || s.Has(5) || s.Len() != 2 {
		t.Fatal("delete failed")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxOrder(t *testing.T) {
	s := New(7)
	for _, k := range []int64{42, 7, 19, 3, 88} {
		s.Insert(k, ev(k))
	}
	if k, _, _ := s.Min(); k != 3 {
		t.Fatalf("min=%d", k)
	}
	if k, _, _ := s.Max(); k != 88 {
		t.Fatalf("max=%d", k)
	}
	var keys []int64
	s.ForEach(func(k int64, _ wgraph.Edge) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("not sorted: %v", keys)
	}
	if len(keys) != 5 {
		t.Fatalf("keys=%v", keys)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(3)
	for k := int64(0); k < 10; k++ {
		s.Insert(k, ev(k))
	}
	count := 0
	s.ForEach(func(int64, wgraph.Edge) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("count=%d", count)
	}
}

func TestSplitLeq(t *testing.T) {
	s := New(5)
	for k := int64(1); k <= 20; k++ {
		s.Insert(k, ev(k))
	}
	got := s.SplitLeq(7)
	if len(got) != 7 {
		t.Fatalf("split returned %d", len(got))
	}
	for i, e := range got {
		if e.ID != wgraph.EdgeID(i+1) {
			t.Fatalf("split order wrong: %v", got)
		}
	}
	if s.Len() != 13 || s.Has(7) || !s.Has(8) {
		t.Fatal("wrong remainder")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Splitting below the minimum is a no-op.
	if got := s.SplitLeq(0); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	// Splitting above the maximum drains the set.
	got = s.SplitLeq(1 << 40)
	if len(got) != 13 || s.Len() != 0 {
		t.Fatalf("drain: %d left %d", len(got), s.Len())
	}
}

func TestVsMapModel(t *testing.T) {
	r := parallel.NewRNG(9)
	s := New(11)
	model := map[int64]wgraph.Edge{}
	for step := 0; step < 5000; step++ {
		switch r.Intn(4) {
		case 0, 1:
			k := int64(r.Intn(500))
			s.Insert(k, ev(k))
			model[k] = ev(k)
		case 2:
			k := int64(r.Intn(500))
			want := false
			if _, ok := model[k]; ok {
				want = true
				delete(model, k)
			}
			if got := s.Delete(k); got != want {
				t.Fatalf("step %d: delete(%d)=%v want %v", step, k, got, want)
			}
		case 3:
			k := int64(r.Intn(500))
			wantV, wantOK := model[k]
			gotV, gotOK := s.Get(k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("step %d: get(%d)", step, k)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("step %d: len %d want %d", step, s.Len(), len(model))
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drain via watermarks and compare against the sorted model.
	var want []int64
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.SplitLeq(1 << 60)
	if len(got) != len(want) {
		t.Fatalf("drain %d want %d", len(got), len(want))
	}
	for i := range got {
		if int64(got[i].ID) != want[i] {
			t.Fatalf("drain order at %d", i)
		}
	}
}

func TestHistoryIndependence(t *testing.T) {
	// Same key set inserted in different orders yields identical traversal
	// (priorities are a pure hash of the key).
	a, b := New(4), New(4)
	keys := []int64{9, 2, 7, 5, 1, 8}
	for _, k := range keys {
		a.Insert(k, ev(k))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(keys[i], ev(keys[i]))
	}
	var ka, kb []int64
	a.ForEach(func(k int64, _ wgraph.Edge) bool { ka = append(ka, k); return true })
	b.ForEach(func(k int64, _ wgraph.Edge) bool { kb = append(kb, k); return true })
	if len(ka) != len(kb) {
		t.Fatal("length mismatch")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("order mismatch")
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(keys []int16, mark int16) bool {
		s := New(99)
		model := map[int64]bool{}
		for _, k := range keys {
			s.Insert(int64(k), ev(int64(k)))
			model[int64(k)] = true
		}
		out := s.SplitLeq(int64(mark))
		for _, e := range out {
			if int64(e.ID) > int64(mark) || !model[int64(e.ID)] {
				return false
			}
			delete(model, int64(e.ID))
		}
		for k := range model {
			if k <= int64(mark) {
				return false
			}
		}
		return s.Len() == len(model) && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeScale(t *testing.T) {
	s := New(2)
	const n = 100_000
	for k := int64(0); k < n; k++ {
		s.Insert(k, ev(k))
	}
	if s.Len() != n {
		t.Fatalf("len=%d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	out := s.SplitLeq(n / 2)
	if len(out) != n/2+1 {
		t.Fatalf("split=%d", len(out))
	}
}
