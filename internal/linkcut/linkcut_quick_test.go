package linkcut

import (
	"testing"
	"testing/quick"

	"repro/internal/unionfind"
	"repro/internal/wgraph"
)

// TestQuickScriptedOps decodes arbitrary byte scripts into valid link/cut/
// query sequences and cross-checks connectivity against union-find rebuilt
// from the live edge set.
func TestQuickScriptedOps(t *testing.T) {
	f := func(script []uint8) bool {
		const n = 24
		fo := New(n)
		live := map[wgraph.EdgeID]wgraph.Edge{}
		nextID := wgraph.EdgeID(1)
		i := 0
		for i+2 < len(script) {
			op := script[i] % 3
			u := int32(script[i+1]) % n
			v := int32(script[i+2]) % n
			i += 3
			switch op {
			case 0: // link if valid
				if u == v {
					continue
				}
				uf := unionfind.New(n)
				for _, e := range live {
					uf.Union(e.U, e.V)
				}
				if !uf.Union(u, v) {
					continue
				}
				e := wgraph.Edge{ID: nextID, U: u, V: v, W: int64(script[i-1])}
				nextID++
				fo.Link(e)
				live[e.ID] = e
			case 1: // cut some live edge deterministically
				for id := range live {
					fo.Cut(id)
					delete(live, id)
					break
				}
			case 2: // query
				uf := unionfind.New(n)
				for _, e := range live {
					uf.Union(e.U, e.V)
				}
				if fo.Connected(u, v) != uf.Connected(u, v) {
					return false
				}
			}
		}
		return fo.NumEdges() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEvertHeavyUsage(t *testing.T) {
	// Exercise makeRoot-heavy access patterns: query every ordered pair on
	// a path both ways; the lazy flip propagation must stay consistent.
	const n = 60
	f := New(n)
	for i := 0; i < n-1; i++ {
		f.Link(wgraph.Edge{ID: wgraph.EdgeID(i + 1), U: int32(i), V: int32(i + 1), W: int64(i + 1)})
	}
	for u := int32(0); u < n; u += 5 {
		for v := int32(0); v < n; v += 7 {
			if u == v {
				continue
			}
			e, ok := f.PathMax(u, v)
			if !ok {
				t.Fatalf("PathMax(%d,%d) not found", u, v)
			}
			lo, hi := u, v
			if lo > hi {
				lo, hi = hi, lo
			}
			if e.ID != wgraph.EdgeID(hi) {
				t.Fatalf("PathMax(%d,%d)=%v want edge %d", u, v, e, hi)
			}
		}
	}
}

func TestIncrementalMSFDisconnectedComponents(t *testing.T) {
	m := NewIncrementalMSF(6)
	m.Insert(wgraph.Edge{ID: 1, U: 0, V: 1, W: 5})
	m.Insert(wgraph.Edge{ID: 2, U: 3, V: 4, W: 7})
	if m.Connected(0, 3) {
		t.Fatal("separate components connected")
	}
	if m.Weight() != 12 || m.Size() != 2 {
		t.Fatalf("weight=%d size=%d", m.Weight(), m.Size())
	}
	m.Insert(wgraph.Edge{ID: 3, U: 1, V: 3, W: 1})
	if !m.Connected(0, 4) {
		t.Fatal("bridge failed")
	}
}
