package linkcut

import (
	"testing"

	"repro/internal/msf"
	"repro/internal/parallel"
	"repro/internal/wgraph"
)

// naiveForest mirrors Forest operations on a plain adjacency list for
// differential testing.
type naiveForest struct {
	n     int
	edges map[wgraph.EdgeID]wgraph.Edge
}

func newNaive(n int) *naiveForest {
	return &naiveForest{n: n, edges: map[wgraph.EdgeID]wgraph.Edge{}}
}

func (nf *naiveForest) adj() map[int32][]wgraph.Edge {
	a := map[int32][]wgraph.Edge{}
	for _, e := range nf.edges {
		a[e.U] = append(a[e.U], e)
		a[e.V] = append(a[e.V], e)
	}
	return a
}

// pathMax does a DFS from u to v and returns the max-key edge on the path.
func (nf *naiveForest) pathMax(u, v int32) (wgraph.Edge, bool) {
	if u == v {
		return wgraph.Edge{}, false
	}
	a := nf.adj()
	type frame struct {
		vertex int32
		best   wgraph.Edge
		has    bool
	}
	seen := map[int32]bool{u: true}
	stack := []frame{{vertex: u}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a[f.vertex] {
			w := e.Other(f.vertex)
			if seen[w] {
				continue
			}
			seen[w] = true
			best, has := f.best, f.has
			if !has || wgraph.KeyOf(best).Less(wgraph.KeyOf(e)) {
				best, has = e, true
			}
			if w == v {
				return best, has
			}
			stack = append(stack, frame{vertex: w, best: best, has: has})
		}
	}
	return wgraph.Edge{}, false
}

func (nf *naiveForest) connected(u, v int32) bool {
	if u == v {
		return true
	}
	_, ok := nf.pathMax(u, v)
	if u != v && ok {
		return true
	}
	// pathMax returns false for disconnected; also false only when u==v.
	return false
}

func TestLinkCutBasic(t *testing.T) {
	f := New(4)
	if f.Connected(0, 1) {
		t.Fatal("fresh forest should be disconnected")
	}
	f.Link(wgraph.Edge{ID: 1, U: 0, V: 1, W: 5})
	f.Link(wgraph.Edge{ID: 2, U: 1, V: 2, W: 9})
	f.Link(wgraph.Edge{ID: 3, U: 2, V: 3, W: 2})
	if !f.Connected(0, 3) {
		t.Fatal("path should connect 0..3")
	}
	e, ok := f.PathMax(0, 3)
	if !ok || e.ID != 2 {
		t.Fatalf("PathMax(0,3)=%v,%v want edge 2", e, ok)
	}
	e, ok = f.PathMax(2, 3)
	if !ok || e.ID != 3 {
		t.Fatalf("PathMax(2,3)=%v,%v want edge 3", e, ok)
	}
	cut := f.Cut(2)
	if cut.ID != 2 {
		t.Fatalf("cut returned %v", cut)
	}
	if f.Connected(0, 3) {
		t.Fatal("cut should disconnect")
	}
	if !f.Connected(0, 1) || !f.Connected(2, 3) {
		t.Fatal("remaining links broken")
	}
}

func TestPathMaxDisconnected(t *testing.T) {
	f := New(3)
	if _, ok := f.PathMax(0, 2); ok {
		t.Fatal("disconnected PathMax should be false")
	}
	if _, ok := f.PathMax(1, 1); ok {
		t.Fatal("trivial PathMax should be false")
	}
}

func TestLinkPanicsOnCycle(t *testing.T) {
	f := New(3)
	f.Link(wgraph.Edge{ID: 1, U: 0, V: 1, W: 1})
	f.Link(wgraph.Edge{ID: 2, U: 1, V: 2, W: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("linking a cycle must panic")
		}
	}()
	f.Link(wgraph.Edge{ID: 3, U: 0, V: 2, W: 1})
}

func TestCutPanicsOnUnknown(t *testing.T) {
	f := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("cutting unknown edge must panic")
		}
	}()
	f.Cut(42)
}

func TestEdgeNodeRecycling(t *testing.T) {
	f := New(2)
	for i := 0; i < 100; i++ {
		f.Link(wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: 1, W: int64(i)})
		f.Cut(wgraph.EdgeID(i))
	}
	if len(f.nodes) > 4 {
		t.Fatalf("edge nodes not recycled: %d nodes", len(f.nodes))
	}
}

func TestRandomOpsVsNaive(t *testing.T) {
	const n = 40
	r := parallel.NewRNG(123)
	f := New(n)
	nf := newNaive(n)
	nextID := wgraph.EdgeID(0)
	liveIDs := []wgraph.EdgeID{}
	for step := 0; step < 3000; step++ {
		op := r.Intn(10)
		switch {
		case op < 4: // try link
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v || nf.connected(u, v) {
				continue
			}
			e := wgraph.Edge{ID: nextID, U: u, V: v, W: r.Int63() % 100}
			nextID++
			f.Link(e)
			nf.edges[e.ID] = e
			liveIDs = append(liveIDs, e.ID)
		case op < 6: // cut random live edge
			if len(liveIDs) == 0 {
				continue
			}
			i := r.Intn(len(liveIDs))
			id := liveIDs[i]
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			f.Cut(id)
			delete(nf.edges, id)
		default: // query
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			wantConn := nf.connected(u, v)
			if got := f.Connected(u, v); got != wantConn {
				t.Fatalf("step %d: Connected(%d,%d)=%v want %v", step, u, v, got, wantConn)
			}
			wantE, wantOK := nf.pathMax(u, v)
			gotE, gotOK := f.PathMax(u, v)
			if gotOK != wantOK || (gotOK && gotE.ID != wantE.ID) {
				t.Fatalf("step %d: PathMax(%d,%d)=(%v,%v) want (%v,%v)", step, u, v, gotE, gotOK, wantE, wantOK)
			}
		}
	}
}

func TestIncrementalMSFMatchesKruskal(t *testing.T) {
	const n = 100
	r := parallel.NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		m := NewIncrementalMSF(n)
		var all []wgraph.Edge
		for i := 0; i < 400; i++ {
			e := wgraph.Edge{
				ID: wgraph.EdgeID(trial*1000 + i),
				U:  int32(r.Intn(n)),
				V:  int32(r.Intn(n)),
				W:  r.Int63() % 50, // force ties
			}
			all = append(all, e)
			m.Insert(e)
		}
		want := msf.Kruskal(n, all)
		if int64(wgraph.TotalWeight(want)) != m.Weight() {
			t.Fatalf("trial %d: weight %d want %d", trial, m.Weight(), wgraph.TotalWeight(want))
		}
		if len(want) != m.Size() {
			t.Fatalf("trial %d: size %d want %d", trial, m.Size(), len(want))
		}
		for _, e := range want {
			if !m.F.HasEdge(e.ID) {
				t.Fatalf("trial %d: forest missing MSF edge %v", trial, e)
			}
		}
	}
}

func TestIncrementalMSFEviction(t *testing.T) {
	m := NewIncrementalMSF(3)
	m.Insert(wgraph.Edge{ID: 1, U: 0, V: 1, W: 10})
	m.Insert(wgraph.Edge{ID: 2, U: 1, V: 2, W: 20})
	added, ev, has := m.Insert(wgraph.Edge{ID: 3, U: 0, V: 2, W: 5})
	if !added || !has || ev.ID != 2 {
		t.Fatalf("added=%v evicted=%v has=%v", added, ev, has)
	}
	added, _, has = m.Insert(wgraph.Edge{ID: 4, U: 0, V: 2, W: 99})
	if added || has {
		t.Fatal("heavy parallel edge should be rejected")
	}
	if m.Weight() != 15 {
		t.Fatalf("weight=%d", m.Weight())
	}
}

func TestIncrementalMSFSelfLoop(t *testing.T) {
	m := NewIncrementalMSF(2)
	added, _, has := m.Insert(wgraph.Edge{ID: 1, U: 1, V: 1, W: -5})
	if added || has {
		t.Fatal("self loop must be rejected")
	}
}

func TestLongPathStress(t *testing.T) {
	const n = 2000
	f := New(n)
	for i := 0; i < n-1; i++ {
		f.Link(wgraph.Edge{ID: wgraph.EdgeID(i), U: int32(i), V: int32(i + 1), W: int64(i)})
	}
	e, ok := f.PathMax(0, n-1)
	if !ok || e.ID != n-2 {
		t.Fatalf("got %v %v", e, ok)
	}
	// Cut in the middle and re-check.
	f.Cut(wgraph.EdgeID(n / 2))
	if f.Connected(0, n-1) {
		t.Fatal("should be disconnected")
	}
	e, ok = f.PathMax(0, n/2)
	if !ok || e.ID != wgraph.EdgeID(n/2-1) {
		t.Fatalf("got %v %v", e, ok)
	}
}

func TestStarStress(t *testing.T) {
	const n = 1000
	f := New(n)
	for i := 1; i < n; i++ {
		f.Link(wgraph.Edge{ID: wgraph.EdgeID(i), U: 0, V: int32(i), W: int64(i)})
	}
	e, ok := f.PathMax(5, 900)
	if !ok || e.ID != 900 {
		t.Fatalf("got %v %v", e, ok)
	}
}
