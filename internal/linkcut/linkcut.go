// Package linkcut implements Sleator–Tarjan link-cut trees (reference [47] of
// the paper) with heaviest-edge path aggregation, plus the classic O(lg n)
// sequential incremental-MSF built on them. It serves two roles:
//
//   - the sequential baseline that Theorem 1.1's batch algorithm is
//     work-efficient against (Table 1, and the crossover benchmarks), and
//   - an independently-coded oracle for the RC tree's PathMax/Connected in
//     differential tests.
//
// Edges are represented as their own nodes ("subdivided" representation), so
// the maximum (W, ID) key on a path is the maximum over the edge nodes of the
// splay path, with vertex nodes carrying the -inf key.
package linkcut

import (
	"fmt"

	"repro/internal/wgraph"
)

const nilNode = int32(-1)

type node struct {
	p    int32    // parent (splay parent or path-parent)
	c    [2]int32 // splay children
	flip bool     // lazy reversal
	key  wgraph.Key
	mx   int32 // node id holding the maximum key in this splay subtree
}

// Forest is a link-cut forest over n vertices supporting edge links, edge
// cuts, connectivity and path-max queries, all in amortized O(lg n).
type Forest struct {
	nodes []node
	edges map[wgraph.EdgeID]int32 // edge id -> edge node
	einfo map[int32]wgraph.Edge   // edge node -> edge
	free  []int32                 // recycled edge nodes
	n     int
}

// New returns a forest of n isolated vertices.
func New(n int) *Forest {
	f := &Forest{
		nodes: make([]node, n),
		edges: make(map[wgraph.EdgeID]int32),
		einfo: make(map[int32]wgraph.Edge),
		n:     n,
	}
	for i := range f.nodes {
		f.nodes[i] = node{p: nilNode, c: [2]int32{nilNode, nilNode}, key: wgraph.MinKey, mx: int32(i)}
	}
	return f
}

// N returns the number of vertices.
func (f *Forest) N() int { return f.n }

// NumEdges returns the number of live edges in the forest.
func (f *Forest) NumEdges() int { return len(f.edges) }

// HasEdge reports whether the edge with the given id is in the forest.
func (f *Forest) HasEdge(id wgraph.EdgeID) bool {
	_, ok := f.edges[id]
	return ok
}

func (f *Forest) alloc(e wgraph.Edge) int32 {
	var id int32
	if len(f.free) > 0 {
		id = f.free[len(f.free)-1]
		f.free = f.free[:len(f.free)-1]
		f.nodes[id] = node{}
	} else {
		id = int32(len(f.nodes))
		f.nodes = append(f.nodes, node{})
	}
	f.nodes[id] = node{p: nilNode, c: [2]int32{nilNode, nilNode}, key: wgraph.KeyOf(e), mx: id}
	f.einfo[id] = e
	f.edges[e.ID] = id
	return id
}

func (f *Forest) isRoot(x int32) bool {
	p := f.nodes[x].p
	return p == nilNode || (f.nodes[p].c[0] != x && f.nodes[p].c[1] != x)
}

func (f *Forest) push(x int32) {
	nx := &f.nodes[x]
	if !nx.flip {
		return
	}
	nx.c[0], nx.c[1] = nx.c[1], nx.c[0]
	for _, ch := range nx.c {
		if ch != nilNode {
			f.nodes[ch].flip = !f.nodes[ch].flip
		}
	}
	nx.flip = false
}

func (f *Forest) update(x int32) {
	nx := &f.nodes[x]
	best := x
	bk := nx.key
	for _, ch := range nx.c {
		if ch == nilNode {
			continue
		}
		cm := f.nodes[ch].mx
		if bk.Less(f.nodes[cm].key) {
			best = cm
			bk = f.nodes[cm].key
		}
	}
	nx.mx = best
}

func (f *Forest) rotate(x int32) {
	p := f.nodes[x].p
	g := f.nodes[p].p
	var dir int
	if f.nodes[p].c[1] == x {
		dir = 1
	}
	b := f.nodes[x].c[1-dir]
	if !f.isRoot(p) {
		if f.nodes[g].c[0] == p {
			f.nodes[g].c[0] = x
		} else {
			f.nodes[g].c[1] = x
		}
	}
	f.nodes[x].p = g
	f.nodes[x].c[1-dir] = p
	f.nodes[p].p = x
	f.nodes[p].c[dir] = b
	if b != nilNode {
		f.nodes[b].p = p
	}
	f.update(p)
	f.update(x)
}

func (f *Forest) splay(x int32) {
	// Push lazy flips from the splay root down to x first.
	stack := []int32{x}
	for y := x; !f.isRoot(y); {
		y = f.nodes[y].p
		stack = append(stack, y)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		f.push(stack[i])
	}
	for !f.isRoot(x) {
		p := f.nodes[x].p
		if !f.isRoot(p) {
			g := f.nodes[p].p
			if (f.nodes[g].c[0] == p) == (f.nodes[p].c[0] == x) {
				f.rotate(p) // zig-zig
			} else {
				f.rotate(x) // zig-zag
			}
		}
		f.rotate(x)
	}
}

// access makes the path from x to the root of its represented tree the
// preferred path and splays x to the top. Returns the last path-parent
// encountered (the root of the represented tree's splay structure).
func (f *Forest) access(x int32) int32 {
	f.splay(x)
	f.nodes[x].c[1] = nilNode // deeper part becomes its own preferred path
	f.update(x)
	last := x
	for f.nodes[x].p != nilNode {
		w := f.nodes[x].p
		last = w
		f.splay(w)
		f.nodes[w].c[1] = x
		f.update(w)
		f.splay(x)
	}
	return last
}

// makeRoot everts the represented tree at x.
func (f *Forest) makeRoot(x int32) {
	f.access(x)
	f.nodes[x].flip = !f.nodes[x].flip
	f.push(x)
}

// findRoot returns the root of x's represented tree.
func (f *Forest) findRoot(x int32) int32 {
	f.access(x)
	for {
		f.push(x)
		if f.nodes[x].c[0] == nilNode {
			break
		}
		x = f.nodes[x].c[0]
	}
	f.splay(x)
	return x
}

// Connected reports whether u and v are in the same tree.
func (f *Forest) Connected(u, v int32) bool {
	if u == v {
		return true
	}
	return f.findRoot(u) == f.findRoot(v)
}

// linkNodes attaches the tree rooted (after evert) at a under b.
func (f *Forest) linkNodes(a, b int32) {
	f.makeRoot(a)
	f.nodes[a].p = b
}

// Link inserts edge e into the forest. It panics if the endpoints are already
// connected (the forest must stay a forest) or if the edge id is live.
func (f *Forest) Link(e wgraph.Edge) {
	if e.IsLoop() {
		panic(fmt.Sprintf("linkcut: cannot link self-loop %v", e))
	}
	if _, ok := f.edges[e.ID]; ok {
		panic(fmt.Sprintf("linkcut: edge id %d already present", e.ID))
	}
	if f.Connected(e.U, e.V) {
		panic(fmt.Sprintf("linkcut: endpoints of %v already connected", e))
	}
	en := f.alloc(e)
	f.linkNodes(en, e.U)
	f.linkNodes(en, e.V)
}

// Cut removes the edge with the given id. It panics if absent.
func (f *Forest) Cut(id wgraph.EdgeID) wgraph.Edge {
	en, ok := f.edges[id]
	if !ok {
		panic(fmt.Sprintf("linkcut: cutting unknown edge %d", id))
	}
	e := f.einfo[en]
	// Detach the u side, then the v side.
	f.makeRoot(e.U)
	f.access(en)
	// After access(en), en's left splay subtree is the path from u to en.
	l := f.nodes[en].c[0]
	f.nodes[l].p = nilNode
	f.nodes[en].c[0] = nilNode
	f.update(en)
	// Now en is a leaf hanging off v.
	f.makeRoot(en)
	f.access(e.V)
	l = f.nodes[e.V].c[0]
	f.nodes[l].p = nilNode
	f.nodes[e.V].c[0] = nilNode
	f.update(e.V)
	delete(f.edges, id)
	delete(f.einfo, en)
	f.free = append(f.free, en)
	return e
}

// PathMax returns the heaviest edge (by the (W, ID) order) on the path from u
// to v and true, or a zero edge and false when u and v are disconnected or
// equal.
func (f *Forest) PathMax(u, v int32) (wgraph.Edge, bool) {
	if u == v || !f.Connected(u, v) {
		return wgraph.Edge{}, false
	}
	f.makeRoot(u)
	f.access(v)
	mx := f.nodes[v].mx
	e, ok := f.einfo[mx]
	if !ok {
		return wgraph.Edge{}, false // path exists but has no edge nodes: impossible for u!=v
	}
	return e, ok
}

// IncrementalMSF is the classic sequential incremental minimum-spanning-forest
// structure: O(lg n) per edge insertion via the red rule on the cycle closed
// by the new edge.
type IncrementalMSF struct {
	F      *Forest
	weight int64
}

// NewIncrementalMSF returns an empty incremental MSF over n vertices.
func NewIncrementalMSF(n int) *IncrementalMSF {
	return &IncrementalMSF{F: New(n)}
}

// Insert adds edge e. It returns the edge evicted from the forest (and
// evicted=true), or evicted=false when nothing was removed. added reports
// whether e itself entered the forest.
func (m *IncrementalMSF) Insert(e wgraph.Edge) (added bool, evicted wgraph.Edge, hasEvicted bool) {
	if e.IsLoop() {
		return false, wgraph.Edge{}, false
	}
	if !m.F.Connected(e.U, e.V) {
		m.F.Link(e)
		m.weight += e.W
		return true, wgraph.Edge{}, false
	}
	heavy, ok := m.F.PathMax(e.U, e.V)
	if !ok {
		panic("linkcut: connected endpoints with no path max")
	}
	if wgraph.KeyOf(e).Less(wgraph.KeyOf(heavy)) {
		m.F.Cut(heavy.ID)
		m.F.Link(e)
		m.weight += e.W - heavy.W
		return true, heavy, true
	}
	return false, wgraph.Edge{}, false
}

// Weight returns the total weight of the current forest.
func (m *IncrementalMSF) Weight() int64 { return m.weight }

// Size returns the number of forest edges.
func (m *IncrementalMSF) Size() int { return m.F.NumEdges() }

// Connected reports connectivity in the current forest (equivalently, in the
// graph inserted so far).
func (m *IncrementalMSF) Connected(u, v int32) bool { return m.F.Connected(u, v) }
