// Package cli holds small helpers shared by the cmd/ binaries.
package cli

import (
	"encoding/json"
	"os"
)

// WriteJSONReport marshals v with indentation and writes it to path, where
// "-" means stdout. Used by the benchmark/load tools for their
// machine-readable reports.
func WriteJSONReport(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
