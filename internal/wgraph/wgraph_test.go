package wgraph

import (
	"testing"
	"testing/quick"
)

func TestKeyTotalOrder(t *testing.T) {
	f := func(w1, w2 int64, id1, id2 int64) bool {
		a := Key{W: w1, ID: EdgeID(id1)}
		b := Key{W: w2, ID: EdgeID(id2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		// Strict totality: exactly one direction holds.
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyTransitivity(t *testing.T) {
	f := func(w [3]int64, id [3]int64) bool {
		ks := [3]Key{
			{W: w[0], ID: EdgeID(id[0])},
			{W: w[1], ID: EdgeID(id[1])},
			{W: w[2], ID: EdgeID(id[2])},
		}
		if ks[0].Less(ks[1]) && ks[1].Less(ks[2]) {
			return ks[0].Less(ks[2])
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxKeyBounds(t *testing.T) {
	ks := []Key{{W: 0, ID: 0}, {W: -5, ID: 100}, {W: 1 << 40, ID: 3}}
	for _, k := range ks {
		if !MinKey.Less(k) {
			t.Fatalf("MinKey not below %v", k)
		}
		if !k.Less(MaxKey) {
			t.Fatalf("MaxKey not above %v", k)
		}
	}
}

func TestMaxMinKeyOf(t *testing.T) {
	a := Key{W: 1, ID: 2}
	b := Key{W: 1, ID: 3}
	if MaxKeyOf(a, b) != b || MaxKeyOf(b, a) != b {
		t.Fatal("MaxKeyOf tie-break by ID failed")
	}
	if MinKeyOf(a, b) != a || MinKeyOf(b, a) != a {
		t.Fatal("MinKeyOf tie-break by ID failed")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 1, U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	e.Other(5)
}

func TestEdgeLoop(t *testing.T) {
	if !(Edge{U: 2, V: 2}).IsLoop() {
		t.Fatal("loop not detected")
	}
	if (Edge{U: 2, V: 3}).IsLoop() {
		t.Fatal("false loop")
	}
}

func TestAdjacency(t *testing.T) {
	edges := []Edge{
		{ID: 0, U: 0, V: 1, W: 5},
		{ID: 1, U: 1, V: 2, W: 7},
		{ID: 2, U: 2, V: 2, W: 9}, // self loop
	}
	a := NewAdjacency(3, edges)
	if a.Degree(0) != 1 || a.Degree(1) != 2 || a.Degree(2) != 2 {
		t.Fatalf("degrees: %d %d %d", a.Degree(0), a.Degree(1), a.Degree(2))
	}
	if got := a.Edge[a.Nbr[0][0].Idx]; got.ID != 0 {
		t.Fatalf("half-edge maps to wrong edge: %v", got)
	}
}

func TestTotalWeight(t *testing.T) {
	edges := []Edge{{W: 3}, {W: -1}, {W: 10}}
	if TotalWeight(edges) != 12 {
		t.Fatalf("got %d", TotalWeight(edges))
	}
	if TotalWeight(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{ID: 4, U: 1, V: 2, W: -3}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}
