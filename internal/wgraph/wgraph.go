// Package wgraph defines the weighted-edge types shared by every module in
// this repository: edges with 64-bit weights and stable IDs, the strict total
// order on weights used for unique minimum spanning forests, and small helpers
// for building edge lists and adjacency structures.
//
// The total order is the pair (W, ID) compared lexicographically. Using it
// everywhere — static MSF tie-breaking, RC-tree path maxima, compressed path
// tree argmax edges — guarantees that the minimum spanning forest of any
// multigraph is unique, which in turn makes the paper's red-rule update
// (Algorithm 2) and all of our differential tests deterministic.
package wgraph

import "fmt"

// EdgeID identifies an edge for its entire lifetime. IDs are assigned by the
// caller (typically an arrival counter) and never reused while the edge is
// live.
type EdgeID int64

// NoEdge is the sentinel for "no edge" in argmax fields.
const NoEdge EdgeID = -1

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	ID EdgeID
	U  int32
	V  int32
	W  int64
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint.
func (e Edge) Other(x int32) int32 {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("wgraph: vertex %d is not an endpoint of edge %v", x, e))
}

// IsLoop reports whether e is a self-loop. Self-loops can never appear in a
// spanning forest.
func (e Edge) IsLoop() bool { return e.U == e.V }

func (e Edge) String() string {
	return fmt.Sprintf("e%d(%d-%d w=%d)", e.ID, e.U, e.V, e.W)
}

// Key is the strict total order on edges: weight first, then ID. Every module
// compares edges with Key so that "heaviest edge on a path" and "minimum
// spanning forest" agree on tie-breaking.
type Key struct {
	W  int64
	ID EdgeID
}

// KeyOf returns the ordering key of e.
func KeyOf(e Edge) Key { return Key{W: e.W, ID: e.ID} }

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.W != o.W {
		return k.W < o.W
	}
	return k.ID < o.ID
}

// MinKey is below every key of a real edge; MaxKey is above every one. They
// serve as identities for max- and min-reductions respectively.
var (
	MinKey = Key{W: -1 << 63, ID: NoEdge}
	MaxKey = Key{W: 1<<63 - 1, ID: 1<<63 - 1}
)

// MaxKeyOf returns the larger of two keys under the total order.
func MaxKeyOf(a, b Key) Key {
	if a.Less(b) {
		return b
	}
	return a
}

// MinKeyOf returns the smaller of two keys under the total order.
func MinKeyOf(a, b Key) Key {
	if a.Less(b) {
		return a
	}
	return b
}

// TotalWeight sums edge weights. It is used by tests comparing MSF weights.
func TotalWeight(edges []Edge) int64 {
	var s int64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// Adjacency is a simple adjacency-list view of an edge set over n vertices,
// used by naive reference implementations in tests and by the static MSF
// algorithms.
type Adjacency struct {
	N    int
	Nbr  [][]Half // Nbr[v] lists the half-edges incident to v
	Edge []Edge   // indexed densely, position i holds the i-th added edge
}

// Half is one direction of an undirected edge: the far endpoint plus the
// index of the edge in the owning Adjacency's Edge slice.
type Half struct {
	To  int32
	Idx int32
}

// NewAdjacency builds an adjacency structure for n vertices containing the
// given edges. Self-loops are kept (they simply produce a Half back to the
// same vertex twice is avoided: a loop contributes one half-edge).
func NewAdjacency(n int, edges []Edge) *Adjacency {
	a := &Adjacency{N: n, Nbr: make([][]Half, n), Edge: make([]Edge, 0, len(edges))}
	for _, e := range edges {
		a.Add(e)
	}
	return a
}

// Add appends one edge.
func (a *Adjacency) Add(e Edge) {
	idx := int32(len(a.Edge))
	a.Edge = append(a.Edge, e)
	a.Nbr[e.U] = append(a.Nbr[e.U], Half{To: e.V, Idx: idx})
	if e.U != e.V {
		a.Nbr[e.V] = append(a.Nbr[e.V], Half{To: e.U, Idx: idx})
	}
}

// Degree returns the number of half-edges at v.
func (a *Adjacency) Degree(v int32) int { return len(a.Nbr[v]) }
