package repro

import (
	"testing"
	"time"
)

// TestStreamServiceReexports drives the re-exported streaming service end
// to end: submit through the ingester, flush, query the window.
func TestStreamServiceReexports(t *testing.T) {
	svc, err := NewStreamService(StreamServiceConfig{
		Window: StreamWindowConfig{N: 100, Seed: 1, MaxArrivals: 1000},
		Ingest: StreamIngesterConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if err := svc.Submit([]ServiceEdge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	svc.Flush()

	conn, err := svc.Window().IsConnected(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !conn {
		t.Fatal("0 and 2 should be connected through 1")
	}
	cc, err := svc.Window().NumComponents()
	if err != nil {
		t.Fatal(err)
	}
	if cc != 98 {
		t.Fatalf("components = %d, want 98", cc)
	}
	if NewStreamServer(svc).Handler() == nil {
		t.Fatal("nil HTTP handler")
	}
}

// TestStreamRegistryReexports drives the re-exported multi-window registry:
// create two windows from a template, ingest into one, drop the other.
func TestStreamRegistryReexports(t *testing.T) {
	reg := NewStreamWindowRegistry(StreamRegistryConfig{
		Shards: 4,
		Template: StreamServiceConfig{
			Window: StreamWindowConfig{N: 50, Seed: 2},
			Ingest: StreamIngesterConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		},
	})
	defer reg.Close()

	a, err := reg.Create("a", StreamServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("b", StreamServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit([]ServiceEdge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if conn, err := a.Window().IsConnected(0, 1); err != nil || !conn {
		t.Fatalf("registry window query: %v %v", conn, err)
	}
	if err := reg.Drop("b"); err != nil {
		t.Fatal(err)
	}
	infos := reg.List()
	if len(infos) != 1 || infos[0].Name != "a" || infos[0].Window.Arrivals != 1 {
		t.Fatalf("List = %+v", infos)
	}
	if NewStreamRegistryServer(reg, StreamServerConfig{}).Handler() == nil {
		t.Fatal("nil registry HTTP handler")
	}
}
