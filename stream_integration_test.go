package repro

import (
	"testing"
	"time"
)

// TestStreamServiceReexports drives the re-exported streaming service end
// to end: submit through the ingester, flush, query the window.
func TestStreamServiceReexports(t *testing.T) {
	svc, err := NewStreamService(StreamServiceConfig{
		Window: StreamWindowConfig{N: 100, Seed: 1, MaxArrivals: 1000},
		Ingest: StreamIngesterConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if err := svc.Submit([]ServiceEdge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	svc.Flush()

	conn, err := svc.Window().IsConnected(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !conn {
		t.Fatal("0 and 2 should be connected through 1")
	}
	cc, err := svc.Window().NumComponents()
	if err != nil {
		t.Fatal(err)
	}
	if cc != 98 {
		t.Fatalf("components = %d, want 98", cc)
	}
	if NewStreamServer(svc).Handler() == nil {
		t.Fatal("nil HTTP handler")
	}
}
