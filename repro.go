// Package repro is a Go reproduction of "Work-efficient Batch-incremental
// Minimum Spanning Trees with Applications to the Sliding Window Model"
// (Anderson, Blelloch, Tangwongsan — SPAA 2020, arXiv:2002.05710).
//
// It exposes the repository's public API by re-exporting the internal
// packages:
//
//   - BatchMSF — the batch-incremental minimum spanning forest of
//     Theorem 1.1 (internal/core): BatchInsert processes l edges in
//     O(l·lg(1+n/l)) expected work via compressed path trees over
//     batch-dynamic rake-compress trees.
//   - The sliding-window structures of Theorem 1.2 (internal/sw):
//     connectivity (lazy and eager), bipartiteness, (1+ε)-approximate MSF
//     weight, k-certificates, cycle-freeness and ε-cut-sparsifiers, all
//     under batch inserts and batch expirations with global timestamps.
//   - The incremental-model structures of Table 1 column 1 (internal/inc).
//   - The streaming service layer (internal/stream): concurrent
//     ingest/query pipelines over the sliding-window structures, many named
//     windows managed by a lock-sharded registry with parallel monitor
//     fan-out, served over HTTP by cmd/swserver and load-tested by
//     cmd/swload.
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// the stream subsystem's batching/concurrency design (§5), and
// EXPERIMENTS.md for running and recording the benchmark sweeps.
package repro

import (
	"repro/internal/core"
	"repro/internal/inc"
	"repro/internal/stream"
	"repro/internal/sw"
	"repro/internal/wgraph"
)

// Edge is a weighted undirected edge. ID must be unique for the lifetime of
// a structure; (W, ID) is the strict total order used everywhere, making
// the minimum spanning forest unique.
type Edge = wgraph.Edge

// EdgeID identifies an edge.
type EdgeID = wgraph.EdgeID

// BatchMSF is the batch-incremental minimum spanning forest (Theorem 1.1).
type BatchMSF = core.BatchMSF

// NewBatchMSF returns an empty batch-incremental MSF over n vertices.
func NewBatchMSF(n int, seed uint64) *BatchMSF { return core.New(n, seed) }

// StreamEdge is an unweighted sliding-window edge arrival.
type StreamEdge = sw.StreamEdge

// WeightedStreamEdge is a weighted sliding-window edge arrival.
type WeightedStreamEdge = sw.WeightedStreamEdge

// SWConn is lazy sliding-window connectivity (Theorem 5.1).
type SWConn = sw.Conn

// NewSWConn returns a lazy sliding-window connectivity structure.
func NewSWConn(n int, seed uint64) *SWConn { return sw.NewConn(n, seed) }

// SWConnEager is sliding-window connectivity with O(1) component counting
// (Theorem 5.2).
type SWConnEager = sw.ConnEager

// NewSWConnEager returns an eager sliding-window connectivity structure.
func NewSWConnEager(n int, seed uint64) *SWConnEager { return sw.NewConnEager(n, seed) }

// SWBipartite is sliding-window bipartiteness (Theorem 5.3).
type SWBipartite = sw.Bipartite

// NewSWBipartite returns a sliding-window bipartiteness monitor.
func NewSWBipartite(n int, seed uint64) *SWBipartite { return sw.NewBipartite(n, seed) }

// SWApproxMSF is the sliding-window (1+ε)-approximate MSF weight structure
// (Theorem 5.4).
type SWApproxMSF = sw.ApproxMSF

// NewSWApproxMSF returns an approximate MSF weight monitor for weights in
// [1, maxWeight].
func NewSWApproxMSF(n int, eps float64, maxWeight int64, seed uint64) *SWApproxMSF {
	return sw.NewApproxMSF(n, eps, maxWeight, seed)
}

// SWKCert is the sliding-window k-certificate (Theorem 5.5).
type SWKCert = sw.KCert

// NewSWKCert returns a sliding-window k-certificate structure.
func NewSWKCert(n, k int, seed uint64) *SWKCert { return sw.NewKCert(n, k, seed) }

// SWCycleFree is sliding-window cycle detection (Theorem 5.6).
type SWCycleFree = sw.CycleFree

// NewSWCycleFree returns a sliding-window cycle monitor.
func NewSWCycleFree(n int, seed uint64) *SWCycleFree { return sw.NewCycleFree(n, seed) }

// SWSparsifier is the sliding-window ε-cut-sparsifier (Theorem 5.8).
type SWSparsifier = sw.Sparsifier

// SparsifierConfig tunes the sparsifier; zero values select defaults.
type SparsifierConfig = sw.SparsifierConfig

// SparseEdge is a sparsifier output edge.
type SparseEdge = sw.SparseEdge

// NewSWSparsifier returns a sliding-window cut sparsifier.
func NewSWSparsifier(n int, cfg SparsifierConfig, seed uint64) *SWSparsifier {
	return sw.NewSparsifier(n, cfg, seed)
}

// StreamService is the concurrent streaming-graph pipeline
// (producers → ingester → window manager → monitors) of internal/stream.
type StreamService = stream.Service

// StreamServiceConfig assembles a StreamService.
type StreamServiceConfig = stream.ServiceConfig

// StreamWindowConfig describes a managed window (vertex count, monitors,
// count- and/or time-based expiry policy).
type StreamWindowConfig = stream.WindowConfig

// StreamIngesterConfig tunes the re-batching ingester (batch threshold,
// flush deadline, queue depth).
type StreamIngesterConfig = stream.IngesterConfig

// ServiceEdge is one timestamped streaming edge arrival.
type ServiceEdge = stream.Edge

// NewStreamService builds and starts a streaming service pipeline.
func NewStreamService(cfg StreamServiceConfig) (*StreamService, error) {
	return stream.NewService(cfg)
}

// StreamServer is the HTTP JSON front-end used by cmd/swserver.
type StreamServer = stream.Server

// NewStreamServer wraps a StreamService in the HTTP JSON front-end as the
// default window of a single-window registry.
func NewStreamServer(svc *StreamService) *StreamServer { return stream.NewServer(svc) }

// StreamWindowRegistry manages many named streaming windows, hash-sharded
// across independent locks.
type StreamWindowRegistry = stream.WindowRegistry

// StreamRegistryConfig tunes a StreamWindowRegistry (lock shards, window
// cap, template config new windows inherit from).
type StreamRegistryConfig = stream.RegistryConfig

// StreamWindowInfo is a public snapshot of one registered window.
type StreamWindowInfo = stream.WindowInfo

// NewStreamWindowRegistry returns an empty window registry.
func NewStreamWindowRegistry(cfg StreamRegistryConfig) *StreamWindowRegistry {
	return stream.NewRegistry(cfg)
}

// StreamPersistenceConfig enables the durability layer of a window
// registry: per-window write-ahead batch logs plus an atomic manifest,
// giving crash recovery by suffix replay.
type StreamPersistenceConfig = stream.PersistenceConfig

// StreamRecoveryReport summarizes a boot-time recovery pass (windows
// recovered, snapshot seeds, replayed log suffix, wall time).
type StreamRecoveryReport = stream.RecoveryReport

// StreamCheckpointStats summarizes one Checkpoint pass (windows covered,
// snapshots written, log segments and superseded snapshots pruned).
type StreamCheckpointStats = stream.CheckpointStats

// StreamPersistenceStats is the /stats snapshot of the durability layer.
type StreamPersistenceStats = stream.PersistenceStats

// StreamMonitorApplyStats is one monitor's cumulative apply accounting
// under the per-monitor locking scheme: how long the window's writer held
// (ApplyNS) and waited for (WaitNS) that monitor's lock.
type StreamMonitorApplyStats = stream.MonitorApplyStats

// StreamQuerySummary is one consistent multi-monitor read: every answer
// corresponds to the same apply epoch (seqlock read across the
// per-monitor locks).
type StreamQuerySummary = stream.QuerySummary

// OpenStreamRegistry builds a registry from its durable state: each
// manifest window is seeded from its newest valid live-edge snapshot
// (when one exists) and the unexpired log suffix after it is replayed;
// with a nil Persistence config it degenerates to
// NewStreamWindowRegistry.
func OpenStreamRegistry(cfg StreamRegistryConfig) (*StreamWindowRegistry, *StreamRecoveryReport, error) {
	return stream.OpenRegistry(cfg)
}

// StreamServerConfig tunes the HTTP front-end (default window name, body
// size cap).
type StreamServerConfig = stream.ServerConfig

// NewStreamRegistryServer wraps a window registry in the HTTP JSON
// front-end: every window is addressable under /windows/{name}/..., and
// the legacy single-window routes serve the default window.
func NewStreamRegistryServer(reg *StreamWindowRegistry, cfg StreamServerConfig) *StreamServer {
	return stream.NewRegistryServer(reg, cfg)
}

// IncConn is incremental (insert-only) connectivity with component counting
// via batch union-find (Table 1 column 1).
type IncConn = inc.Conn

// NewIncConn returns an incremental connectivity structure.
func NewIncConn(n int) *IncConn { return inc.NewConn(n) }

// IncBipartite is incremental bipartiteness.
type IncBipartite = inc.Bipartite

// NewIncBipartite returns an incremental bipartiteness monitor.
func NewIncBipartite(n int) *IncBipartite { return inc.NewBipartite(n) }

// IncCycleFree is incremental cycle detection.
type IncCycleFree = inc.CycleFree

// NewIncCycleFree returns an incremental cycle monitor.
func NewIncCycleFree(n int) *IncCycleFree { return inc.NewCycleFree(n) }

// IncKCert is the incremental k-certificate.
type IncKCert = inc.KCert

// NewIncKCert returns an incremental k-certificate structure.
func NewIncKCert(n, k int) *IncKCert { return inc.NewKCert(n, k) }
